"""Semantic analysis for mini-C.

Checks performed before lowering:

* every variable is declared before use and not redeclared;
* array references name declared global arrays, plain variable references
  do not name arrays (arrays are not first-class values);
* calls target declared functions with matching arity; functions used in
  value position must return a value;
* ``break``/``continue`` appear inside loops;
* ``goto`` targets exist within the same function, labels are unique;
* array initializers fit the declared size.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import SemanticError
from repro.frontend import ast


def check_unit(unit: ast.TranslationUnit):
    """Raise :class:`SemanticError` on the first problem found."""
    arrays: Dict[str, ast.ArrayDecl] = {}
    for array in unit.arrays:
        if array.name in arrays:
            raise SemanticError(f"array {array.name!r} redeclared")
        if array.size <= 0:
            raise SemanticError(f"array {array.name!r} has size {array.size}")
        if len(array.initial) > array.size:
            raise SemanticError(
                f"array {array.name!r}: too many initializers"
            )
        arrays[array.name] = array

    functions: Dict[str, ast.FunctionDecl] = {}
    for function in unit.functions:
        if function.name in functions:
            raise SemanticError(f"function {function.name!r} redeclared")
        if function.name in arrays:
            raise SemanticError(
                f"{function.name!r} declared as both array and function"
            )
        functions[function.name] = function

    for function in unit.functions:
        _FunctionChecker(function, arrays, functions).check()


class _FunctionChecker:
    def __init__(self, function, arrays, functions):
        self.function = function
        self.arrays = arrays
        self.functions = functions
        self.variables: Set[str] = set(function.params)
        self.labels: Set[str] = set()
        self.gotos: List[str] = []
        self.loop_depth = 0
        if len(set(function.params)) != len(function.params):
            raise SemanticError(
                f"{function.name}: duplicate parameter names"
            )

    def error(self, message: str, line: int):
        raise SemanticError(f"{self.function.name}:{line}: {message}")

    def check(self):
        self._collect_labels(self.function.body)
        self._check_body(self.function.body)
        for label in self.gotos:
            if label not in self.labels:
                self.error(f"goto to unknown label {label!r}", 0)

    def _collect_labels(self, body):
        for stmt in body:
            if isinstance(stmt, ast.LabelStmt):
                if stmt.label in self.labels:
                    self.error(f"duplicate label {stmt.label!r}", stmt.line)
                self.labels.add(stmt.label)
            for attr in ("then_body", "else_body", "body"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self._collect_labels(inner)

    # ------------------------------------------------------------------
    def _check_body(self, body):
        for stmt in body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt):
        if isinstance(stmt, ast.DeclStmt):
            if stmt.name in self.variables:
                self.error(f"variable {stmt.name!r} redeclared", stmt.line)
            if stmt.name in self.arrays:
                self.error(
                    f"{stmt.name!r} shadows a global array", stmt.line
                )
            if stmt.init is not None:
                self._check_expr(stmt.init)
            self.variables.add(stmt.name)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_expr(stmt.target)
            self._check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, value_needed=False)
        elif isinstance(stmt, ast.IfStmt):
            self._check_expr(stmt.cond)
            self._check_body(stmt.then_body)
            self._check_body(stmt.else_body)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._check_expr(stmt.cond)
            self.loop_depth += 1
            self._check_body(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            self.loop_depth += 1
            self._check_body(stmt.body)
            if stmt.step is not None:
                self._check_stmt(stmt.step)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.BreakStmt):
            if self.loop_depth == 0:
                self.error("break outside loop", stmt.line)
        elif isinstance(stmt, ast.ContinueStmt):
            if self.loop_depth == 0:
                self.error("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._check_expr(stmt.value)
            elif self.function.returns_value:
                self.error("return without value in int function", stmt.line)
        elif isinstance(stmt, ast.GotoStmt):
            self.gotos.append(stmt.label)
        elif isinstance(stmt, ast.LabelStmt):
            pass
        else:
            self.error(f"unknown statement {type(stmt).__name__}", stmt.line)

    # ------------------------------------------------------------------
    def _check_expr(self, expr, value_needed: bool = True):
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.VarRef):
            if expr.name in self.arrays:
                self.error(
                    f"array {expr.name!r} used without an index", expr.line
                )
            if expr.name not in self.variables:
                self.error(f"undeclared variable {expr.name!r}", expr.line)
            return
        if isinstance(expr, ast.ArrayRef):
            if expr.array not in self.arrays:
                self.error(f"unknown array {expr.array!r}", expr.line)
            self._check_expr(expr.index)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return
        if isinstance(expr, ast.Call):
            target = self.functions.get(expr.callee)
            if target is None:
                self.error(f"unknown function {expr.callee!r}", expr.line)
            if len(expr.args) != len(target.params):
                self.error(
                    f"{expr.callee} expects {len(target.params)} args, "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            if value_needed and not target.returns_value:
                self.error(
                    f"void function {expr.callee!r} used as a value",
                    expr.line,
                )
            for arg in expr.args:
                self._check_expr(arg)
            return
        self.error(f"unknown expression {type(expr).__name__}", expr.line)
