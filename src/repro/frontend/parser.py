"""Recursive-descent parser for the mini-C language."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_BINOP_TOKENS = {
    TokenKind.OR_OR: "||",
    TokenKind.AND_AND: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.SHL: "<<",
    TokenKind.SHR: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def check(self, kind: TokenKind) -> bool:
        return self.current.kind is kind

    def accept(self, kind: TokenKind) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: TokenKind) -> Token:
        if not self.check(kind):
            raise ParseError(
                f"expected {kind.value!r}, found {self.current.text!r}",
                line=self.current.line,
                column=self.current.column,
            )
        return self.advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.check(TokenKind.EOF):
            returns_value = True
            if self.accept(TokenKind.KW_VOID):
                returns_value = False
            else:
                self.expect(TokenKind.KW_INT)
            name = self.expect(TokenKind.IDENT)
            if self.check(TokenKind.LBRACKET):
                if not returns_value:
                    raise ParseError(
                        "arrays must be declared 'int'", line=name.line
                    )
                unit.arrays.append(self._parse_array_decl(name))
            else:
                unit.functions.append(
                    self._parse_function(name, returns_value)
                )
        return unit

    def _parse_array_decl(self, name: Token) -> ast.ArrayDecl:
        self.expect(TokenKind.LBRACKET)
        size = self.expect(TokenKind.INT)
        self.expect(TokenKind.RBRACKET)
        initial: List[int] = []
        if self.accept(TokenKind.ASSIGN):
            self.expect(TokenKind.LBRACE)
            while not self.check(TokenKind.RBRACE):
                negative = self.accept(TokenKind.MINUS) is not None
                literal = self.expect(TokenKind.INT)
                initial.append(-literal.value if negative else literal.value)
                if not self.accept(TokenKind.COMMA):
                    break
            self.expect(TokenKind.RBRACE)
        self.expect(TokenKind.SEMI)
        return ast.ArrayDecl(
            name=name.value, size=size.value, initial=initial,
            line=name.line,
        )

    def _parse_function(
        self, name: Token, returns_value: bool
    ) -> ast.FunctionDecl:
        self.expect(TokenKind.LPAREN)
        params: List[str] = []
        while not self.check(TokenKind.RPAREN):
            self.expect(TokenKind.KW_INT)
            params.append(self.expect(TokenKind.IDENT).value)
            if not self.accept(TokenKind.COMMA):
                break
        self.expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.FunctionDecl(
            name=name.value,
            params=params,
            body=body,
            returns_value=returns_value,
            line=name.line,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> List[ast.Stmt]:
        self.expect(TokenKind.LBRACE)
        statements: List[ast.Stmt] = []
        while not self.check(TokenKind.RBRACE):
            statements.append(self._parse_statement())
        self.expect(TokenKind.RBRACE)
        return statements

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind is TokenKind.KW_INT:
            return self._parse_declaration()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_BREAK:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.BreakStmt(line=token.line)
        if token.kind is TokenKind.KW_CONTINUE:
            self.advance()
            self.expect(TokenKind.SEMI)
            return ast.ContinueStmt(line=token.line)
        if token.kind is TokenKind.KW_RETURN:
            self.advance()
            value = None
            if not self.check(TokenKind.SEMI):
                value = self._parse_expr()
            self.expect(TokenKind.SEMI)
            return ast.ReturnStmt(value=value, line=token.line)
        if token.kind is TokenKind.KW_GOTO:
            self.advance()
            label = self.expect(TokenKind.IDENT)
            self.expect(TokenKind.SEMI)
            return ast.GotoStmt(label=label.value, line=token.line)
        if (
            token.kind is TokenKind.IDENT
            and self.peek().kind is TokenKind.COLON
        ):
            self.advance()
            self.advance()
            return ast.LabelStmt(label=token.value, line=token.line)
        if token.kind is TokenKind.LBRACE:
            # Anonymous block: flatten (no new scope; sema handles shadowing
            # by rejecting redeclaration).
            body = self._parse_block()
            wrapper = ast.IfStmt(
                cond=ast.IntLit(value=1, line=token.line),
                then_body=body,
                line=token.line,
            )
            return wrapper
        return self._parse_simple_statement(expect_semi=True)

    def _parse_declaration(self) -> ast.Stmt:
        token = self.expect(TokenKind.KW_INT)
        name = self.expect(TokenKind.IDENT)
        init = None
        if self.accept(TokenKind.ASSIGN):
            init = self._parse_expr()
        self.expect(TokenKind.SEMI)
        return ast.DeclStmt(name=name.value, init=init, line=token.line)

    def _parse_simple_statement(self, expect_semi: bool) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, call, or bare expr."""
        token = self.current
        expr = self._parse_expr()
        statement: ast.Stmt
        if self.check(TokenKind.ASSIGN):
            self.advance()
            value = self._parse_expr()
            self._require_lvalue(expr)
            statement = ast.AssignStmt(
                target=expr, value=value, line=token.line
            )
        elif self.current.kind in (TokenKind.PLUS_EQ, TokenKind.MINUS_EQ):
            op = "+" if self.advance().kind is TokenKind.PLUS_EQ else "-"
            value = self._parse_expr()
            self._require_lvalue(expr)
            statement = ast.AssignStmt(
                target=expr,
                value=ast.Binary(
                    op=op, left=expr, right=value, line=token.line
                ),
                line=token.line,
            )
        elif self.current.kind in (
            TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS
        ):
            op = "+" if self.advance().kind is TokenKind.PLUS_PLUS else "-"
            self._require_lvalue(expr)
            statement = ast.AssignStmt(
                target=expr,
                value=ast.Binary(
                    op=op,
                    left=expr,
                    right=ast.IntLit(value=1, line=token.line),
                    line=token.line,
                ),
                line=token.line,
            )
        else:
            statement = ast.ExprStmt(expr=expr, line=token.line)
        if expect_semi:
            self.expect(TokenKind.SEMI)
        return statement

    def _require_lvalue(self, expr: ast.Expr):
        if not isinstance(expr, (ast.VarRef, ast.ArrayRef)):
            raise ParseError(
                "assignment target must be a variable or array element",
                line=expr.line,
            )

    def _parse_if(self) -> ast.IfStmt:
        token = self.expect(TokenKind.KW_IF)
        self.expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self.expect(TokenKind.RPAREN)
        then_body = self._parse_body()
        else_body: List[ast.Stmt] = []
        if self.accept(TokenKind.KW_ELSE):
            if self.check(TokenKind.KW_IF):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body()
        return ast.IfStmt(
            cond=cond, then_body=then_body, else_body=else_body,
            line=token.line,
        )

    def _parse_while(self) -> ast.WhileStmt:
        token = self.expect(TokenKind.KW_WHILE)
        self.expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self.expect(TokenKind.RPAREN)
        body = self._parse_body()
        return ast.WhileStmt(cond=cond, body=body, line=token.line)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        token = self.expect(TokenKind.KW_DO)
        body = self._parse_body()
        self.expect(TokenKind.KW_WHILE)
        self.expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.SEMI)
        return ast.DoWhileStmt(body=body, cond=cond, line=token.line)

    def _parse_for(self) -> ast.ForStmt:
        token = self.expect(TokenKind.KW_FOR)
        self.expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self.check(TokenKind.SEMI):
            if self.check(TokenKind.KW_INT):
                init = self._parse_declaration()
            else:
                init = self._parse_simple_statement(expect_semi=True)
        else:
            self.expect(TokenKind.SEMI)
        cond: Optional[ast.Expr] = None
        if not self.check(TokenKind.SEMI):
            cond = self._parse_expr()
        self.expect(TokenKind.SEMI)
        step: Optional[ast.Stmt] = None
        if not self.check(TokenKind.RPAREN):
            step = self._parse_simple_statement(expect_semi=False)
        self.expect(TokenKind.RPAREN)
        body = self._parse_body()
        return ast.ForStmt(
            init=init, cond=cond, step=step, body=body, line=token.line
        )

    def _parse_body(self) -> List[ast.Stmt]:
        if self.check(TokenKind.LBRACE):
            return self._parse_block()
        return [self._parse_statement()]

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = _BINOP_TOKENS.get(self.current.kind)
            if op is None or _PRECEDENCE[op] < min_precedence:
                return left
            token = self.advance()
            right = self._parse_expr(_PRECEDENCE[op] + 1)
            left = ast.Binary(
                op=op, left=left, right=right, line=token.line
            )

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.MINUS:
            self.advance()
            return ast.Unary(
                op="-", operand=self._parse_unary(), line=token.line
            )
        if token.kind is TokenKind.BANG:
            self.advance()
            return ast.Unary(
                op="!", operand=self._parse_unary(), line=token.line
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind is TokenKind.LPAREN:
            self.advance()
            expr = self._parse_expr()
            self.expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.check(TokenKind.LBRACKET):
                self.advance()
                index = self._parse_expr()
                self.expect(TokenKind.RBRACKET)
                return ast.ArrayRef(
                    array=token.value, index=index, line=token.line
                )
            if self.check(TokenKind.LPAREN):
                self.advance()
                args: List[ast.Expr] = []
                while not self.check(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    if not self.accept(TokenKind.COMMA):
                        break
                self.expect(TokenKind.RPAREN)
                return ast.Call(
                    callee=token.value, args=args, line=token.line
                )
            return ast.VarRef(name=token.value, line=token.line)
        raise ParseError(
            f"unexpected token {token.text!r} in expression",
            line=token.line,
            column=token.column,
        )


def parse_source(source: str) -> ast.TranslationUnit:
    """Lex and parse a mini-C source string."""
    return Parser(tokenize(source)).parse_unit()
