"""Resource-constrained list scheduling for EPIC blocks.

Classic cycle-driven list scheduling over the predicate-aware dependence
graph: operations become *ready* once every dependence predecessor has been
placed and its latency has elapsed; among ready operations, the scheduler
greedily places the ones with the greatest critical-path height (ties broken
by program order) into free functional units.

Legality of overlapping branches, hoisting speculative operations above
branches, and reordering guarded operations is entirely encoded in the
dependence graph (see :mod:`repro.analysis.dependence`), so this module is a
straightforward engine.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.errors import SchedulingError
from repro.ir.block import Block
from repro.ir.procedure import Procedure
from repro.machine.processor import ProcessorConfig
from repro.obs import record_counter
from repro.sched.schedule import BlockSchedule, ProcedureSchedule


def schedule_block(
    block: Block,
    processor: ProcessorConfig,
    liveness: Optional[LivenessAnalysis] = None,
    graph: Optional[DependenceGraph] = None,
) -> BlockSchedule:
    """Schedule one block; returns per-op issue cycles and the length."""
    latencies = processor.latencies
    if graph is None:
        graph = DependenceGraph(block, latencies, liveness=liveness)
    ops = graph.ops
    count = len(ops)
    schedule = BlockSchedule(block=block, branch_latency=latencies.branch)
    if count == 0:
        schedule.length = 1
        return schedule

    heights = graph.critical_path_height()
    unplaced_preds = {
        i: len(graph.predecessors(i)) for i in range(count)
    }
    earliest = {i: 0 for i in range(count)}
    resources = processor.resource_table()
    placed: Dict[int, int] = {}

    # Ready heap ordered by (-height, program order).
    ready = []
    for i in range(count):
        if unplaced_preds[i] == 0:
            heapq.heappush(ready, (-heights[i], i))

    cycle = 0
    pending = count
    deferred = []
    guard = 0
    peak_ready = len(ready)
    while pending > 0:
        guard += 1
        if len(ready) > peak_ready:
            peak_ready = len(ready)
        if guard > 1_000_000:
            raise SchedulingError(
                f"scheduler failed to converge on {block.label}"
            )
        progressed = False
        deferred.clear()
        while ready:
            priority, index = heapq.heappop(ready)
            if earliest[index] > cycle:
                deferred.append((priority, index))
                continue
            unit = ops[index].opcode.unit_class()
            if not resources.can_place(cycle, unit):
                deferred.append((priority, index))
                continue
            resources.place(cycle, unit)
            placed[index] = cycle
            schedule.cycles[ops[index].uid] = cycle
            pending -= 1
            progressed = True
            for edge in graph.successors(index):
                earliest[edge.dst] = max(
                    earliest[edge.dst], cycle + edge.latency
                )
                unplaced_preds[edge.dst] -= 1
                if unplaced_preds[edge.dst] == 0:
                    heapq.heappush(ready, (-heights[edge.dst], edge.dst))
        for item in deferred:
            heapq.heappush(ready, item)
        cycle += 1
        if not progressed and not ready and pending > 0:
            raise SchedulingError(
                f"deadlock scheduling {block.label}: {pending} ops stuck"
            )

    schedule.length = max(
        placed[i] + latencies.latency(ops[i].opcode) for i in range(count)
    )
    # One sample per scheduled block keeps the hooks negligible even on
    # untraced builds (a single context-variable read each).
    record_counter("sched.ops_scheduled", count)
    record_counter("sched.block_cycles", schedule.length)
    record_counter("sched.ready_queue_depth", peak_ready)
    return schedule


def schedule_procedure(
    proc: Procedure,
    processor: ProcessorConfig,
) -> ProcedureSchedule:
    """Schedule every block of *proc* independently (hyperblock scheduling:
    each block is its own scheduling region, as in the paper)."""
    liveness = LivenessAnalysis(proc)
    result = ProcedureSchedule()
    for block in proc.blocks:
        result.schedules[block.label.name] = schedule_block(
            block, processor, liveness=liveness
        )
    return result
