"""Resource-constrained list scheduling for EPIC blocks.

Classic cycle-driven list scheduling over the predicate-aware dependence
graph: operations become *ready* once every dependence predecessor has been
placed and its latency has elapsed; among ready operations, the scheduler
greedily places the ones with the greatest critical-path height (ties broken
by program order) into free functional units.

Legality of overlapping branches, hoisting speculative operations above
branches, and reordering guarded operations is entirely encoded in the
dependence graph (see :mod:`repro.analysis.dependence`), so this module is a
straightforward engine. Two interchangeable engines implement it:

* ``soa`` (the default) — the struct-of-arrays core in
  :mod:`repro.sched.soa`: the block is lowered once into flat integer
  arrays and scheduled with an event-driven cycle advance;
* ``object`` — the original object-per-operation engine, kept as the
  reference implementation and escape hatch (``--sched-engine=object``).

Both engines are bit-identical — same per-op cycles, schedule lengths, and
emitted counters — enforced by the differential property suite. Callers
pick an engine per call or set the process default via
:func:`set_default_engine` / :func:`use_engine`.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.errors import SchedulingError
from repro.ir.block import Block
from repro.ir.procedure import Procedure
from repro.machine.processor import ProcessorConfig
from repro.obs import record_counter
from repro.sched.schedule import BlockSchedule, ProcedureSchedule

#: The interchangeable scheduling engines.
ENGINES = ("object", "soa")

_default_engine = "soa"


def set_default_engine(name: str):
    """Set the process-wide default engine (``object`` or ``soa``)."""
    global _default_engine
    if name not in ENGINES:
        raise SchedulingError(
            f"unknown scheduler engine {name!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    _default_engine = name


def get_default_engine() -> str:
    return _default_engine


@contextmanager
def use_engine(name: str):
    """Temporarily select the default engine (tests, farm workers)."""
    previous = get_default_engine()
    set_default_engine(name)
    try:
        yield
    finally:
        set_default_engine(previous)


def _resolve_engine(engine: Optional[str]) -> str:
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise SchedulingError(
            f"unknown scheduler engine {engine!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
    return engine


# ----------------------------------------------------------------------
# The object-per-operation reference engine
# ----------------------------------------------------------------------
def _schedule_block_object(
    block: Block,
    processor: ProcessorConfig,
    liveness: Optional[LivenessAnalysis],
    graph: Optional[DependenceGraph],
) -> Tuple[BlockSchedule, int]:
    """The original engine; returns ``(schedule, peak_ready)``."""
    latencies = processor.latencies
    if graph is None:
        graph = DependenceGraph(block, latencies, liveness=liveness)
    ops = graph.ops
    count = len(ops)
    schedule = BlockSchedule(block=block, branch_latency=latencies.branch)
    if count == 0:
        schedule.length = 1
        return schedule, 0

    heights = graph.critical_path_height()
    unplaced_preds = {
        i: len(graph.predecessors(i)) for i in range(count)
    }
    earliest = {i: 0 for i in range(count)}
    resources = processor.resource_table()
    placed: Dict[int, int] = {}

    # Ready heap ordered by (-height, program order).
    ready = []
    for i in range(count):
        if unplaced_preds[i] == 0:
            heapq.heappush(ready, (-heights[i], i))
    # High-water count of ready-but-unplaced ops, sampled every time an
    # op *becomes* ready (not once per cycle, which misses the successor
    # pushes that happen while the inner loop drains the heap).
    ready_count = len(ready)
    peak_ready = ready_count

    cycle = 0
    pending = count
    deferred = []
    guard = 0
    while pending > 0:
        guard += 1
        if guard > 1_000_000:
            raise SchedulingError(
                f"scheduler failed to converge on {block.label}"
            )
        progressed = False
        deferred.clear()
        while ready:
            priority, index = heapq.heappop(ready)
            if earliest[index] > cycle:
                deferred.append((priority, index))
                continue
            unit = ops[index].opcode.unit_class()
            if not resources.can_place(cycle, unit):
                deferred.append((priority, index))
                continue
            resources.place(cycle, unit)
            placed[index] = cycle
            schedule.cycles[ops[index].uid] = cycle
            pending -= 1
            ready_count -= 1
            progressed = True
            for edge in graph.successors(index):
                earliest[edge.dst] = max(
                    earliest[edge.dst], cycle + edge.latency
                )
                unplaced_preds[edge.dst] -= 1
                if unplaced_preds[edge.dst] == 0:
                    heapq.heappush(ready, (-heights[edge.dst], edge.dst))
                    ready_count += 1
                    if ready_count > peak_ready:
                        peak_ready = ready_count
        if pending > 0 and not progressed:
            # Deadlock detection must run *before* deferred ops go back
            # into ``ready`` (the old post-re-push test could never fire,
            # so genuine deadlocks spun to the iteration guard instead).
            if not deferred:
                raise SchedulingError(
                    f"deadlock scheduling {block.label}: "
                    f"{pending} ops stuck"
                )
            if all(earliest[index] <= cycle for _, index in deferred):
                # Nothing was placed, so this cycle is empty — yet every
                # deferred op failed to fit. A fresh cycle can never look
                # different: no placement is possible and no future event
                # exists.
                raise SchedulingError(
                    f"deadlock scheduling {block.label}: {pending} ops "
                    "unplaceable (no free unit at an empty cycle and no "
                    "future event)"
                )
        for item in deferred:
            heapq.heappush(ready, item)
        cycle += 1

    schedule.length = max(
        max(
            placed[i] + latencies.latency(ops[i].opcode)
            for i in range(count)
        ),
        1,
    )
    return schedule, peak_ready


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def schedule_block(
    block: Block,
    processor: ProcessorConfig,
    liveness: Optional[LivenessAnalysis] = None,
    graph: Optional[DependenceGraph] = None,
    engine: Optional[str] = None,
) -> BlockSchedule:
    """Schedule one block; returns per-op issue cycles and the length.

    ``engine`` overrides the process default (see :data:`ENGINES`).
    """
    engine = _resolve_engine(engine)
    if engine == "soa":
        from repro.sched.soa import lower_block, schedule_lowered

        soa = lower_block(
            block, processor.latencies, liveness=liveness, graph=graph
        )
        schedule, peak_ready = schedule_lowered(soa, block, processor)
    else:
        schedule, peak_ready = _schedule_block_object(
            block, processor, liveness, graph
        )
    return _emit((schedule, peak_ready))


def schedule_procedure(
    proc: Procedure,
    processor: ProcessorConfig,
    engine: Optional[str] = None,
) -> ProcedureSchedule:
    """Schedule every block of *proc* independently (hyperblock scheduling:
    each block is its own scheduling region, as in the paper)."""
    engine = _resolve_engine(engine)
    result = ProcedureSchedule()
    if engine == "soa":
        from repro.sched.soa import ProcedureLowering, schedule_lowered

        lowering = ProcedureLowering(proc, processor.latencies)
        for block in proc.blocks:
            result.schedules[block.label.name] = _emit(
                schedule_lowered(
                    lowering.for_block(block), block, processor
                )
            )
        return result
    liveness = LivenessAnalysis(proc)
    for block in proc.blocks:
        result.schedules[block.label.name] = _emit(
            _schedule_block_object(block, processor, liveness, None)
        )
    return result


def schedule_procedure_multi(
    proc: Procedure,
    processors: Sequence[ProcessorConfig],
    engine: Optional[str] = None,
) -> Dict[str, ProcedureSchedule]:
    """Schedule *proc* on several machines; returns name -> schedules.

    This is the registry evaluation hot path (Table 2 measures five
    presets per build). Under the ``soa`` engine, machines sharing a
    latency model also share one liveness solve and one lowering per
    block — the dependence graph does not depend on the resource shape —
    so the per-machine cost collapses to the array loop alone. The
    ``object`` engine runs one full independent pass per machine.

    Machine names key the result, so they must be unique (the latency
    ablations rename nothing — pass such variants one at a time).
    """
    names = [processor.name for processor in processors]
    if len(set(names)) != len(names):
        raise SchedulingError(
            f"schedule_procedure_multi needs uniquely named machines, "
            f"got {names}"
        )
    engine = _resolve_engine(engine)
    if engine != "soa":
        return {
            processor.name: schedule_procedure(proc, processor, engine)
            for processor in processors
        }
    from repro.sched.soa import ProcedureLowering, schedule_lowered

    # Group machines by latency model (lowering depends on latencies, not
    # on unit counts); preserve caller order in the result.
    lowerings: List[Tuple[object, ProcedureLowering]] = []
    results: Dict[str, ProcedureSchedule] = {}
    for processor in processors:
        lowering = None
        for latencies, candidate in lowerings:
            if latencies == processor.latencies:
                lowering = candidate
                break
        if lowering is None:
            lowering = ProcedureLowering(proc, processor.latencies)
            lowerings.append((processor.latencies, lowering))
        schedules = ProcedureSchedule()
        for block in proc.blocks:
            schedules.schedules[block.label.name] = _emit(
                schedule_lowered(
                    lowering.for_block(block), block, processor
                )
            )
        results[processor.name] = schedules
    return results


def _emit(outcome: Tuple[BlockSchedule, int]) -> BlockSchedule:
    """Record the per-block counters an engine run produced."""
    schedule, peak_ready = outcome
    if not schedule.cycles:
        return schedule
    record_counter("sched.ops_scheduled", len(schedule.cycles))
    record_counter("sched.block_cycles", schedule.length)
    record_counter("sched.ready_queue_depth", peak_ready)
    return schedule
