"""Schedule result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation


@dataclass
class BlockSchedule:
    """The outcome of scheduling one block on one processor."""

    block: Block
    cycles: Dict[int, int] = field(default_factory=dict)  # op uid -> cycle
    length: int = 0          # cycles until the fall-through path completes
    branch_latency: int = 1

    def cycle_of(self, op: Operation) -> int:
        return self.cycles[op.uid]

    def exit_cycle(self, branch: Operation) -> int:
        """Cycle at which control actually leaves through *branch* when it
        takes (issue cycle plus the exposed branch latency)."""
        return self.cycles[branch.uid] + self.branch_latency

    def ops_at(self, cycle: int) -> List[Operation]:
        return [op for op in self.block.ops if self.cycles[op.uid] == cycle]

    def format(self) -> str:
        lines = [f"schedule for {self.block.label} (length {self.length}):"]
        for cycle in range(self.length):
            ops = self.ops_at(cycle)
            if ops:
                rendered = " || ".join(op.format() for op in ops)
                lines.append(f"  {cycle:3d}: {rendered}")
        return "\n".join(lines)


@dataclass
class ProcedureSchedule:
    """Per-block schedules for a whole procedure."""

    schedules: Dict[str, BlockSchedule] = field(default_factory=dict)

    def for_block(self, label) -> BlockSchedule:
        name = label.name if hasattr(label, "name") else str(label)
        return self.schedules[name]

    def total_static_length(self) -> int:
        return sum(s.length for s in self.schedules.values())
