"""Struct-of-arrays scheduling core: lowering and the event-driven engine.

The object IR (:class:`~repro.ir.operation.Operation` lists hanging off
:class:`~repro.ir.block.Block`) is the authoring and printing layer; the
scheduler's hot path does not need any of it. This module lowers one block
*once* into flat parallel arrays of small integers — a :class:`BlockSoA` —
and schedules from those arrays with an event-driven cycle advance.

Lowering contract
-----------------
``lower_block`` consumes the predicate-aware
:class:`~repro.analysis.dependence.DependenceGraph` (the single source of
truth for legality) and freezes it into:

* ``units[i]``   — functional-unit class as an integer index into
  :data:`UNIT_CLASSES` (``I``/``F``/``M``/``B``);
* ``latencies[i]`` — the op's visible latency under the lowered
  :class:`~repro.machine.latency.LatencyModel`;
* ``pred_counts[i]`` — number of dependence predecessors;
* ``succ_ptr``/``succ_dst``/``succ_lat`` — CSR-style successor edge lists:
  the edges leaving op *i* occupy positions ``succ_ptr[i]`` to
  ``succ_ptr[i + 1]`` of the two payload arrays;
* ``heights[i]`` — critical-path height, the scheduler's priority
  (identical recurrence to ``DependenceGraph.critical_path_height``);
* ``uids[i]`` — the op uid at position *i*, used only to key the
  resulting :class:`~repro.sched.schedule.BlockSchedule` for callers.

A ``BlockSoA`` depends on the block's operations and the latency model but
*not* on the machine's resource shape, so one lowering schedules every
processor preset that shares a latency model (all five paper machines do).

Event-driven advance
--------------------
The engine never revisits a past cycle and never places into a future one,
so the only live resource state is the *current* cycle's usage counters.
After draining the ready heap at cycle ``c``, the clock jumps directly to
the next event instead of incrementing:

* if some deferred op was resource-blocked at ``c``, the next event is
  ``c + 1`` (a fresh cycle always has free units);
* otherwise it is the minimum ``earliest`` among deferred ops;
* if neither exists while ops remain, the block can never be scheduled and
  :class:`~repro.errors.SchedulingError` is raised immediately (no
  placement is possible and no future event will change that).

The engine is bit-identical to the object engine in
:mod:`repro.sched.list_scheduler` — same per-op cycles, same lengths, same
emitted counters — which the differential property suite enforces across
random hyperblocks and every machine preset.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.errors import SchedulingError
from repro.ir.block import Block
from repro.machine.latency import LatencyModel
from repro.machine.processor import ProcessorConfig
from repro.sched.schedule import BlockSchedule

#: Unit-class letters in index order; ``units[i]`` indexes this tuple.
UNIT_CLASSES = ("I", "F", "M", "B")

_UNIT_INDEX = {letter: i for i, letter in enumerate(UNIT_CLASSES)}

#: Stand-in capacity for "unlimited" unit counts / uncapped issue width.
_UNLIMITED = 1 << 30


class BlockSoA:
    """One block frozen into parallel integer arrays (see module doc)."""

    __slots__ = (
        "label",
        "count",
        "uids",
        "units",
        "latencies",
        "pred_counts",
        "succ_ptr",
        "succ_dst",
        "succ_lat",
        "heights",
    )

    def __init__(
        self,
        label,
        count: int,
        uids: List[int],
        units: List[int],
        latencies: List[int],
        pred_counts: List[int],
        succ_ptr: List[int],
        succ_dst: List[int],
        succ_lat: List[int],
        heights: List[int],
    ):
        self.label = label
        self.count = count
        self.uids = uids
        self.units = units
        self.latencies = latencies
        self.pred_counts = pred_counts
        self.succ_ptr = succ_ptr
        self.succ_dst = succ_dst
        self.succ_lat = succ_lat
        self.heights = heights

    def successors(self, index: int) -> Sequence[Tuple[int, int]]:
        """(dst, latency) pairs of the edges leaving *index* (for tests)."""
        lo, hi = self.succ_ptr[index], self.succ_ptr[index + 1]
        return list(zip(self.succ_dst[lo:hi], self.succ_lat[lo:hi]))


def lower_block(
    block: Block,
    latencies: LatencyModel,
    liveness: Optional[LivenessAnalysis] = None,
    graph: Optional[DependenceGraph] = None,
) -> BlockSoA:
    """Freeze *block* into a :class:`BlockSoA` under *latencies*.

    The dependence graph is built here (the object layer stays the single
    source of legality) unless the caller already has one.
    """
    if graph is None:
        graph = DependenceGraph(block, latencies, liveness=liveness)
    ops = graph.ops
    count = len(ops)
    uids = [op.uid for op in ops]
    units = [_UNIT_INDEX[op.opcode.unit_class()] for op in ops]
    op_lat = [latencies.latency(op.opcode) for op in ops]
    pred_counts = [len(graph.preds[i]) for i in range(count)]

    succ_ptr = [0] * (count + 1)
    succ_dst: List[int] = []
    succ_lat: List[int] = []
    for i in range(count):
        for edge in graph.succs[i]:
            succ_dst.append(edge.dst)
            succ_lat.append(edge.latency)
        succ_ptr[i + 1] = len(succ_dst)

    # Critical-path heights: edges always point forward in program order,
    # so a single reverse sweep is a topological-order relaxation.
    heights = [0] * count
    for i in range(count - 1, -1, -1):
        best = op_lat[i]
        for e in range(succ_ptr[i], succ_ptr[i + 1]):
            candidate = succ_lat[e] + heights[succ_dst[e]]
            if candidate > best:
                best = candidate
        heights[i] = best

    return BlockSoA(
        label=block.label,
        count=count,
        uids=uids,
        units=units,
        latencies=op_lat,
        pred_counts=pred_counts,
        succ_ptr=succ_ptr,
        succ_dst=succ_dst,
        succ_lat=succ_lat,
        heights=heights,
    )


def _capacity_vector(processor: ProcessorConfig) -> Tuple[List[int], int]:
    """Per-class unit counts (index order of UNIT_CLASSES) + issue width."""
    counts = processor.unit_counts
    caps = [
        _UNLIMITED if counts[letter] is None else counts[letter]
        for letter in UNIT_CLASSES
    ]
    width = (
        _UNLIMITED if processor.issue_width is None else processor.issue_width
    )
    return caps, width


def schedule_lowered(
    soa: BlockSoA,
    block: Block,
    processor: ProcessorConfig,
) -> Tuple[BlockSchedule, int]:
    """Schedule a lowered block on *processor*.

    Returns ``(schedule, peak_ready)`` where ``peak_ready`` is the
    high-water count of ready-but-unplaced operations (sampled whenever an
    operation becomes ready — the counter the dispatcher emits as
    ``sched.ready_queue_depth``).
    """
    count = soa.count
    schedule = BlockSchedule(
        block=block, branch_latency=processor.latencies.branch
    )
    if count == 0:
        schedule.length = 1
        return schedule, 0

    units = soa.units
    op_lat = soa.latencies
    heights = soa.heights
    succ_ptr = soa.succ_ptr
    succ_dst = soa.succ_dst
    succ_lat = soa.succ_lat
    uids = soa.uids
    caps, width = _capacity_vector(processor)

    unplaced_preds = list(soa.pred_counts)
    earliest = [0] * count
    placed = [0] * count

    ready: List[Tuple[int, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    for i in range(count):
        if unplaced_preds[i] == 0:
            push(ready, (-heights[i], i))
    ready_count = len(ready)
    peak_ready = ready_count

    cycle = 0
    pending = count
    used = [0, 0, 0, 0]
    total_used = 0
    deferred: List[Tuple[int, int]] = []
    length = 0
    while pending > 0:
        progressed = False
        deferred.clear()
        while ready:
            item = pop(ready)
            index = item[1]
            if earliest[index] > cycle:
                deferred.append(item)
                continue
            unit = units[index]
            if total_used >= width or used[unit] >= caps[unit]:
                deferred.append(item)
                continue
            used[unit] += 1
            total_used += 1
            placed[index] = cycle
            pending -= 1
            ready_count -= 1
            progressed = True
            done = cycle + op_lat[index]
            if done > length:
                length = done
            for e in range(succ_ptr[index], succ_ptr[index + 1]):
                dst = succ_dst[e]
                finish = cycle + succ_lat[e]
                if finish > earliest[dst]:
                    earliest[dst] = finish
                unplaced_preds[dst] -= 1
                if unplaced_preds[dst] == 0:
                    push(ready, (-heights[dst], dst))
                    ready_count += 1
                    if ready_count > peak_ready:
                        peak_ready = ready_count
        if pending == 0:
            break
        if not deferred:
            raise SchedulingError(
                f"deadlock scheduling {soa.label}: {pending} ops stuck"
            )
        # Event-driven advance: jump to the next cycle anything can change.
        next_event = _UNLIMITED
        blocked_now = False
        for _, index in deferred:
            when = earliest[index]
            if when <= cycle:
                blocked_now = True
            elif when < next_event:
                next_event = when
        if blocked_now:
            if not progressed and total_used == 0:
                # The cycle was empty, yet no deferred op fit: its unit
                # class can never host it — no future cycle differs.
                raise SchedulingError(
                    f"deadlock scheduling {soa.label}: {pending} ops "
                    "unplaceable (no free unit at an empty cycle and no "
                    "future event)"
                )
            next_event = cycle + 1
        for item in deferred:
            push(ready, item)
        cycle = next_event
        used[0] = used[1] = used[2] = used[3] = 0
        total_used = 0

    cycles = schedule.cycles
    for i in range(count):
        cycles[uids[i]] = placed[i]
    schedule.length = max(length, 1)
    return schedule, peak_ready


class ProcedureLowering:
    """Per-procedure lowering shared across machines with one latency model.

    ``for_block`` lowers lazily and memoizes by block identity; the object
    lifetime is one scheduling request (no cross-pass caching — passes
    mutate blocks in place, so lowerings must never outlive the call that
    created them).
    """

    def __init__(self, proc, latencies: LatencyModel):
        self.latencies = latencies
        self.liveness = LivenessAnalysis(proc)
        self._lowered: Dict[int, BlockSoA] = {}

    def for_block(self, block: Block) -> BlockSoA:
        key = id(block)
        soa = self._lowered.get(key)
        if soa is None:
            soa = lower_block(
                block, self.latencies, liveness=self.liveness
            )
            self._lowered[key] = soa
        return soa
