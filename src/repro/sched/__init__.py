"""EPIC list scheduling (object reference engine + struct-of-arrays core)."""

from repro.sched.list_scheduler import (
    ENGINES,
    get_default_engine,
    schedule_block,
    schedule_procedure,
    schedule_procedure_multi,
    set_default_engine,
    use_engine,
)
from repro.sched.schedule import BlockSchedule, ProcedureSchedule
from repro.sched.soa import BlockSoA, ProcedureLowering, lower_block

__all__ = [
    "ENGINES",
    "BlockSchedule",
    "BlockSoA",
    "ProcedureLowering",
    "ProcedureSchedule",
    "get_default_engine",
    "lower_block",
    "schedule_block",
    "schedule_procedure",
    "schedule_procedure_multi",
    "set_default_engine",
    "use_engine",
]
