"""EPIC list scheduling."""

from repro.sched.list_scheduler import schedule_block, schedule_procedure
from repro.sched.schedule import BlockSchedule, ProcedureSchedule

__all__ = [
    "BlockSchedule",
    "ProcedureSchedule",
    "schedule_block",
    "schedule_procedure",
]
