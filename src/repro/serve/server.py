"""The compile-as-a-service daemon: ``repro serve``.

A single-threaded asyncio HTTP/1.1 server (stdlib only — hand-rolled
request parsing over :func:`asyncio.start_server`) that accepts
compile/evaluate requests and dispatches them onto the supervised build
farm through a small executor pool. Robustness is the point:

* **Admission control.** Requests pass, in order: a per-client token
  bucket (fairness — one chatty client cannot starve the rest), the
  overload ladder's gates, and a bounded wait queue. Any refusal is an
  HTTP 429 with a ``Retry-After`` header and a structured body saying
  *why* (``throttle`` / ``queue-full`` / ``shed``) — never a 5xx,
  because nothing failed.
* **Overload shedding.** A four-rung degradation ladder
  (:data:`SHED_LEVELS`), mirroring the ICBM ladder's
  full → degraded → minimal shape: ``full`` answers everything;
  ``no-extras`` drops span traces from responses; ``cache-only``
  answers only warm evaluation-cache hits and sheds the rest;
  ``shed-low-priority`` additionally refuses clients below the priority
  floor. Transitions are occupancy-driven with hysteresis (sustained
  pressure to climb, sustained calm to descend) and every transition is
  a ``shed-transition`` ledger entry plus a counter bump, so a
  post-incident reading shows exactly when and why quality degraded.
* **Deadlines.** A request's ``deadline_s`` bounds its whole stay:
  queue wait burns it down, and the remainder propagates into the farm
  supervisor's per-attempt deadline. A deadline that expires while
  queued is answered 504 and journalled as a NACK.
* **Crash recovery.** Every accepted request is journalled
  (:mod:`repro.serve.journal`) before it runs and its response is
  journalled before the client sees it. A daemon restarted with
  ``--resume`` replays answered requests verbatim from the journal and
  explicitly NACKs (410) anything that was in flight when it died —
  an accepted request is never silently lost.

Observability rides the existing substrate: each request gets its own
:class:`~repro.obs.Tracer` with accept → queue → dispatch → merge →
respond spans, the daemon keeps a ``serve.*``
:class:`~repro.obs.CounterSet` (the ``repro.serve.*`` family) and a
:class:`~repro.obs.DecisionLedger`, and ``GET /v1/metrics`` serves the
aggregate as a ``repro.farm.metrics/v3`` document with the ``serve``
section attached.

Endpoints::

    POST /v1/compile        submit a request (workload name or inline
                            source/ir); blocks until answered
    GET  /v1/requests/<id>  replay a finished answer (200), report a
                            NACK (410), pending (202), or unknown (404)
    GET  /v1/healthz        liveness + shed level + queue depth
    GET  /v1/metrics        metrics/v3 document with serve section
    GET  /v1/workloads      registry names a request may use
    POST /v1/drain          stop accepting, finish in-flight, exit
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import errors
from repro.farm.metrics import CompileMetrics
from repro.obs import CounterSet, DecisionLedger, Tracer
from repro.serve import journal as serve_journal
from repro.serve.protocol import (
    SERVE_SCHEMA,
    STATUS_NACKED,
    STATUS_REJECTED,
    CompileRequest,
    dumps,
    error_body,
    response_body,
    status_for,
)

#: The degradation ladder, least to most degraded. Documented order;
#: the shedding test pins transitions to walk it one rung at a time.
SHED_LEVELS = ("full", "no-extras", "cache-only", "shed-low-priority")

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServeOptions:
    """Daemon knobs; defaults suit an interactive single-host service."""

    host: str = "127.0.0.1"
    #: 0 picks a free port; the bound port is announced on the ready line.
    port: int = 0
    #: Concurrent backend evaluations (each is a one-workload farm).
    backend_jobs: int = 2
    #: Requests allowed to wait for a backend slot before queue-full 429s.
    queue_limit: int = 16
    #: Per-client token bucket: sustained requests/second and burst size.
    rate: float = 20.0
    burst: int = 40
    #: Deadline for requests that do not bring their own.
    default_deadline_s: float = 120.0
    #: Supervisor retries per request (worker-crash requeues).
    retries: int = 1
    scale: int = 1
    processors: Tuple[str, ...] = ("medium",)
    cache_root: Optional[str] = None
    journal_path: Optional[str] = None
    resume: bool = False
    #: Ladder hysteresis: climb after `shed_sustain` consecutive
    #: occupancy samples >= `shed_escalate`, descend after the same
    #: number <= `shed_deescalate`.
    shed_escalate: float = 0.8
    shed_deescalate: float = 0.25
    shed_sustain: int = 3
    #: At shed level 3, requests with priority below this are refused.
    priority_floor: int = 1
    #: Run request farms under the supervisor (production default).
    supervised: bool = True


class TokenBucket:
    """Per-client fairness: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last = now

    def take(self, now: float) -> float:
        """0.0 when a token was taken, else seconds until one exists."""
        elapsed = max(0.0, now - self.last)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0:
            return 60.0
        return (1.0 - self.tokens) / self.rate


class CompileServer:
    """One daemon instance; single asyncio loop, executor-backed farms."""

    def __init__(self, options: ServeOptions, backend=None, clock=None):
        self.options = options
        if backend is None:
            from repro.serve.backend import FarmBackend

            backend = FarmBackend(
                cache_root=options.cache_root,
                scale=options.scale,
                processors=options.processors,
                retries=options.retries,
                supervised=options.supervised,
            )
        self.backend = backend
        self.clock = clock or time.monotonic
        self.counters = CounterSet()
        self.ledger = DecisionLedger()
        self.metrics = CompileMetrics()
        #: id -> {"state": "pending"} | {"state": "done", "status", "body"}
        #:       | {"state": "nacked", "reason"}
        self.requests: Dict[str, dict] = {}
        self.buckets: Dict[str, TokenBucket] = {}
        self.shed_level = 0
        self._over = 0
        self._under = 0
        self.waiting = 0
        self.connections = 0
        self.port: Optional[int] = None
        self.journal = None
        self.recovered_state = None
        self.recovered_nacks = ()
        self._seq = itertools.count(1)
        self._avg_exec: Optional[float] = None
        self._draining = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._server = None
        self._sema: Optional[asyncio.Semaphore] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._sema = asyncio.Semaphore(self.options.backend_jobs)
        self._executor = ThreadPoolExecutor(
            max_workers=self.options.backend_jobs,
            thread_name_prefix="serve-backend",
        )
        if self.options.journal_path:
            self._recover()
        self._server = await asyncio.start_server(
            self._handle, self.options.host, self.options.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _recover(self):
        journal, state, nacked = serve_journal.recover(
            self.options.journal_path, self.options.resume
        )
        self.journal = journal
        self.recovered_state = state
        self.recovered_nacks = tuple(nacked)
        if state is None:
            return
        replayed = 0
        for rid in state.order:
            terminal = state.states.get(rid)
            if terminal == serve_journal.DONE:
                entry = state.responses[rid]
                self.requests[rid] = {
                    "state": "done",
                    "status": entry["status"],
                    "body": entry["body"],
                }
                replayed += 1
            elif terminal == serve_journal.NACKED:
                self.requests[rid] = {
                    "state": "nacked",
                    "reason": state.nacks.get(rid, ""),
                }
        self.counters.add("serve.recovered", float(len(state.order)))
        for _ in nacked:
            self.counters.add("serve.nacked")
        self.ledger.record(
            "serve-recover",
            "-",
            "-",
            resolved=len(state.order),
            replayed=replayed,
            nacked=len(nacked),
            truncated_tail=state.truncated,
        )

    async def run(self, ready: Optional[threading.Event] = None):
        """Start, signal readiness, serve until stop is requested."""
        await self.start()
        if ready is not None:
            ready.set()
        await self._stop.wait()
        await self._shutdown()

    def request_stop(self):
        """Thread-safe stop request (used by signal handlers and tests)."""
        loop, stop = self.loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed: the daemon is gone anyway

    async def _shutdown(self):
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + 30.0
        while self.connections and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer):
        self.connections += 1
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, target, raw = parsed
            try:
                status, body, extra = await self._route(method, target, raw)
            except errors.ReproError as exc:
                status, body, extra = self._error(exc)
            except Exception as exc:  # pragma: no cover - defensive
                status, extra = 500, {}
                body = {
                    "schema": SERVE_SCHEMA,
                    "error": {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "http_status": 500,
                        "exit_code": 1,
                    },
                }
            writer.write(_http_bytes(status, body, extra))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self.connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader):
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=30.0
            )
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return None
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            raw = await reader.readexactly(length) if length > 0 else b""
            return method, target, raw
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
            UnicodeDecodeError,
        ):
            return None

    async def _route(self, method, target, raw):
        path = target.split("?", 1)[0]
        if path == "/v1/compile" and method == "POST":
            return await self._compile(raw)
        if path.startswith("/v1/requests/") and method == "GET":
            return self._request_status(path[len("/v1/requests/"):])
        if path == "/v1/healthz" and method == "GET":
            return self._healthz()
        if path == "/v1/metrics" and method == "GET":
            return 200, self.metrics_document(), {}
        if path == "/v1/workloads" and method == "GET":
            from repro.workloads.registry import all_names

            return 200, {
                "schema": SERVE_SCHEMA,
                "workloads": list(all_names()),
            }, {}
        if path == "/v1/drain" and method == "POST":
            self._draining = True
            self.loop.call_later(0.05, self._stop.set)
            return 200, {"schema": SERVE_SCHEMA, "draining": True}, {}
        return 404, {
            "schema": SERVE_SCHEMA,
            "error": {
                "type": "NotFound",
                "message": f"no route for {method} {path}",
                "http_status": 404,
                "exit_code": 2,
            },
        }, {}

    # ------------------------------------------------------------------
    # The compile path
    # ------------------------------------------------------------------
    async def _compile(self, raw):
        tracer = Tracer()
        with tracer.span("request", kind="serve") as root:
            with tracer.span("accept", kind="serve"):
                try:
                    data = json.loads(raw.decode("utf-8")) if raw else {}
                except (ValueError, UnicodeDecodeError):
                    return self._error(
                        errors.UsageError("request body is not valid JSON")
                    )
                try:
                    request = CompileRequest.from_json(
                        data, default_id=f"r{next(self._seq)}"
                    )
                except errors.ReproError as exc:
                    return self._error(exc)
                root.set_attr("id", request.id)
                root.set_attr("client", request.client)
                replay = self._check_duplicate(request)
                if replay is not None:
                    return replay
                try:
                    fast = self._admit(request)
                except errors.ReproError as exc:
                    return self._reject(exc)
            return await self._execute(request, fast, tracer)

    def _check_duplicate(self, request):
        existing = self.requests.get(request.id)
        if existing is None:
            return None
        if existing["state"] == "done":
            self.counters.add("serve.replayed")
            return existing["status"], existing["body"], {}
        if existing["state"] == "pending":
            exc = errors.UsageError(
                f"request {request.id} is already pending; poll "
                f"GET /v1/requests/{request.id}"
            )
            body = error_body(exc)
            body["error"]["http_status"] = 409
            return 409, body, {}
        # NACKed ids may be re-submitted; the journal's in-order replay
        # makes the new accept supersede the old nack.
        return None

    def _admit(self, request):
        """Token bucket -> shed gates -> bounded queue; journal on accept.

        Returns a fast-path :class:`Outcome` when the cache-only rung
        answered from the warm cache, else ``None`` (request must run).
        Raises :class:`~repro.errors.ServeRejected` (429) or
        :class:`~repro.errors.FarmInterrupted` (503, draining).
        """
        if self._draining:
            raise errors.FarmInterrupted(
                "server is draining; resubmit to the replacement instance"
            )
        now = self.clock()
        bucket = self.buckets.get(request.client)
        if bucket is None:
            bucket = self.buckets[request.client] = TokenBucket(
                self.options.rate, self.options.burst, now
            )
        self._observe()
        wait = bucket.take(now)
        if wait > 0.0:
            raise errors.ServeRejected(
                f"client {request.client!r} is over its rate limit "
                f"({self.options.rate:g}/s, burst {self.options.burst})",
                reason="throttle",
                retry_after_s=max(1, math.ceil(wait)),
            )
        if (
            self.shed_level >= 3
            and request.priority < self.options.priority_floor
        ):
            raise errors.ServeRejected(
                f"shedding priority<{self.options.priority_floor} "
                f"requests at shed level {self.shed_level} "
                f"({SHED_LEVELS[self.shed_level]})",
                reason="shed",
                retry_after_s=self._retry_after(),
            )
        fast = None
        if self.shed_level >= 2:
            fast = self.backend.try_cache(request)
            if fast is None:
                raise errors.ServeRejected(
                    f"cache-only at shed level {self.shed_level}; "
                    f"{request.program_name} is not warm in the cache",
                    reason="shed",
                    retry_after_s=self._retry_after(),
                )
        if fast is None and self.waiting >= self.options.queue_limit:
            raise errors.ServeRejected(
                f"request queue at capacity ({self.options.queue_limit})",
                reason="queue-full",
                retry_after_s=self._retry_after(),
            )
        self.counters.add("serve.accepted")
        self.requests[request.id] = {"state": "pending"}
        if self.journal is not None:
            self.journal.accept(request.id, request.payload())
        return fast

    async def _execute(self, request, fast, tracer):
        deadline_s = request.deadline_s or self.options.default_deadline_s
        started = self.clock()
        if fast is not None:
            self.counters.add("serve.cache_only_hits")
            outcome = fast
        else:
            outcome = await self._run_backend(
                request, deadline_s, started, tracer
            )
            if isinstance(outcome, tuple):
                # (status, body, headers) — already-answered failure.
                return outcome
        with tracer.span("merge", kind="serve"):
            if outcome.metrics is not None:
                self.metrics.merge(outcome.metrics)
            if outcome.retries:
                self.counters.add("serve.retried", float(outcome.retries))
            self._track_exec(self.clock() - started)
            include_extras = request.trace and self.shed_level < 1
            if request.trace and not include_extras:
                self.counters.add("serve.extras_dropped")
        with tracer.span("respond", kind="serve"):
            server_trace = tracer.to_dict() if include_extras else None
            body = response_body(
                request, outcome, self.shed_level, server_trace
            )
            self._respond(request, 200, body)
        return 200, body, {}

    async def _run_backend(self, request, deadline_s, started, tracer):
        """Queue for a slot, then evaluate off-loop; returns Outcome or
        an already-built (status, body, headers) failure triple."""
        with tracer.span("queue", kind="serve") as qspan:
            self.waiting += 1
            self.counters.add("serve.queue_depth", float(self.waiting))
            try:
                try:
                    await asyncio.wait_for(
                        self._sema.acquire(), timeout=deadline_s
                    )
                except asyncio.TimeoutError:
                    self.counters.add("serve.deadline_expired")
                    self._nack(request, "deadline")
                    return self._error(errors.FarmTimeout(
                        f"request {request.id} spent its {deadline_s:g}s "
                        "deadline waiting for a backend slot",
                        budget_s=deadline_s,
                    ))
            finally:
                self.waiting -= 1
            qspan.set_attr("waited_s", round(self.clock() - started, 6))
        try:
            with tracer.span("dispatch", kind="serve") as dspan:
                remaining = max(0.5, deadline_s - (self.clock() - started))
                want_trace = request.trace and self.shed_level < 1
                try:
                    outcome = await self.loop.run_in_executor(
                        self._executor,
                        lambda: self.backend.evaluate(
                            request, remaining, want_trace
                        ),
                    )
                except errors.ReproError as exc:
                    if isinstance(exc, errors.FarmTimeout):
                        self.counters.add("serve.deadline_expired")
                    self._nack(request, f"error:{type(exc).__name__}")
                    return self._error(exc)
                dspan.set_attr("from_cache", outcome.from_cache)
                return outcome
        finally:
            self._sema.release()
            self._observe()

    # ------------------------------------------------------------------
    # Terminal-state bookkeeping (journal + request map + counters)
    # ------------------------------------------------------------------
    def _respond(self, request, status, body):
        self.requests[request.id] = {
            "state": "done", "status": status, "body": body,
        }
        if self.journal is not None:
            self.journal.respond(request.id, status, body)

    def _nack(self, request, reason):
        self.requests[request.id] = {"state": "nacked", "reason": reason}
        self.counters.add("serve.nacked")
        self.ledger.record(
            "serve-nack", "-", "-", id=request.id, reason=reason
        )
        if self.journal is not None:
            self.journal.nack(request.id, reason)

    def _reject(self, exc):
        self.counters.add("serve.rejected")
        if isinstance(exc, errors.ServeRejected):
            self.counters.add(f"serve.rejected.{exc.reason}")
            if exc.reason == "shed":
                self.counters.add("serve.shed")
        return self._error(exc)

    def _error(self, exc):
        if isinstance(exc, errors.ServeRejected):
            headers = {
                "Retry-After": str(int(math.ceil(exc.retry_after_s)))
            }
            return STATUS_REJECTED, error_body(exc), headers
        status, _ = status_for(exc)
        return status, error_body(exc), {}

    # ------------------------------------------------------------------
    # The shedding ladder
    # ------------------------------------------------------------------
    def _observe(self):
        """Sample queue occupancy; climb/descend the ladder on sustain."""
        occupancy = self.waiting / max(1, self.options.queue_limit)
        if occupancy >= self.options.shed_escalate:
            self._over += 1
            self._under = 0
            if self._over >= self.options.shed_sustain and self.shed_level < 3:
                self._transition(self.shed_level + 1, occupancy)
                self._over = 0
        elif occupancy <= self.options.shed_deescalate:
            self._under += 1
            self._over = 0
            if self._under >= self.options.shed_sustain and self.shed_level:
                self._transition(self.shed_level - 1, occupancy)
                self._under = 0
        else:
            self._over = 0
            self._under = 0

    def _transition(self, to_level, occupancy):
        from_level = self.shed_level
        self.shed_level = to_level
        self.counters.add("serve.shed_transitions")
        self.counters.add("serve.shed_level", float(to_level))
        self.ledger.record(
            "shed-transition",
            "-",
            "-",
            from_level=from_level,
            to_level=to_level,
            from_name=SHED_LEVELS[from_level],
            to_name=SHED_LEVELS[to_level],
            occupancy=round(occupancy, 3),
        )

    def _retry_after(self) -> int:
        """Estimated seconds until a slot frees: EWMA exec time scaled
        by queue depth, clamped to [1, 60]."""
        avg = self._avg_exec if self._avg_exec is not None else 1.0
        estimate = avg * (self.waiting + 1) / max(1, self.options.backend_jobs)
        return int(min(60.0, max(1.0, math.ceil(estimate))))

    def _track_exec(self, wall_s):
        if self._avg_exec is None:
            self._avg_exec = wall_s
        else:
            self._avg_exec = 0.8 * self._avg_exec + 0.2 * wall_s

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _request_status(self, rid):
        entry = self.requests.get(rid)
        if entry is None:
            return 404, {
                "schema": SERVE_SCHEMA,
                "error": {
                    "type": "NotFound",
                    "message": f"unknown request id {rid!r}",
                    "http_status": 404,
                    "exit_code": 2,
                },
            }, {}
        if entry["state"] == "pending":
            return 202, {
                "schema": SERVE_SCHEMA, "id": rid, "state": "pending",
            }, {}
        if entry["state"] == "nacked":
            return STATUS_NACKED, {
                "schema": SERVE_SCHEMA,
                "id": rid,
                "state": "nacked",
                "reason": entry["reason"],
            }, {}
        self.counters.add("serve.replayed")
        return entry["status"], entry["body"], {}

    def _healthz(self):
        return 200, {
            "schema": SERVE_SCHEMA,
            "status": "draining" if self._draining else "ok",
            "shed_level": self.shed_level,
            "shed_level_name": SHED_LEVELS[self.shed_level],
            "queue_depth": self.waiting,
            "queue_limit": self.options.queue_limit,
            "accepted": self.counters.get("serve.accepted").count,
            "rejected": self.counters.get("serve.rejected").count,
            "nacked": self.counters.get("serve.nacked").count,
        }, {}

    def metrics_document(self) -> dict:
        """The aggregate ``repro.farm.metrics/v3`` document with the
        daemon's ``serve`` section (also what ``GET /v1/metrics`` serves)."""
        snapshot = CompileMetrics.from_dict(self.metrics.to_dict())
        snapshot.counters = snapshot.counters.merge(self.counters)
        return snapshot.to_json_dict(
            jobs=self.options.backend_jobs,
            cache_enabled=self.options.cache_root is not None,
            cache_root=self.options.cache_root,
            serve={
                "shed_level": self.shed_level,
                "shed_level_name": SHED_LEVELS[self.shed_level],
                "queue_depth": self.waiting,
                "queue_limit": self.options.queue_limit,
                "draining": self._draining,
                "ledger": self.ledger.to_dict(),
            },
        )


def _http_bytes(status: int, body: dict, headers: dict) -> bytes:
    payload = dumps(body)
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for key, value in headers.items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


# ----------------------------------------------------------------------
# Embedding helpers (tests, benchmarks)
# ----------------------------------------------------------------------
class ServerHandle:
    """An in-thread daemon: the loop runs in a daemon thread, the test
    talks to it over real sockets."""

    def __init__(self, server: CompileServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.options.host}:{self.server.port}"

    def stop(self, timeout: float = 30.0):
        self.server.request_stop()
        self.thread.join(timeout)


def start_in_thread(
    options: ServeOptions, backend=None, clock=None
) -> ServerHandle:
    """Boot a :class:`CompileServer` on a daemon thread; returns once
    the socket is bound."""
    server = CompileServer(options, backend=backend, clock=clock)
    ready = threading.Event()
    failures = []

    def _run():
        try:
            asyncio.run(server.run(ready))
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failures.append(exc)
            ready.set()

    thread = threading.Thread(
        target=_run, name="repro-serve", daemon=True
    )
    thread.start()
    if not ready.wait(timeout=30.0):
        raise errors.UsageError("serve daemon failed to start in 30s")
    if failures:
        raise failures[0]
    return ServerHandle(server, thread)
