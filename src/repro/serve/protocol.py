"""Wire protocol for ``repro serve``: requests, responses, error fidelity.

One schema tag (:data:`SERVE_SCHEMA`) covers every JSON body the daemon
emits. The module owns two contracts the tests pin down:

* **Request validation** — :meth:`CompileRequest.from_json` accepts a
  workload name *or* inline program text (mini-C ``source`` or IR
  assembly ``ir``) plus knobs (priority, deadline, extras) and raises
  :class:`~repro.errors.UsageError` for anything malformed, so bad input
  is a 400 before it ever touches the queue.
* **Cross-boundary error fidelity** — :data:`ERROR_STATUS` maps every
  library exception class to an HTTP status *and* the CLI exit code the
  same failure produces under ``python -m repro``
  (2/3/4/5/6/7/8/130; see :data:`repro.__main__.EXIT_CODES`). The
  structured error body (:func:`error_body`) carries the existing
  incident payloads — quarantine histories, worker tracebacks, failing
  workload names — verbatim, so a service client can debug a failure as
  well as a CLI user can.

Admission rejections (:class:`~repro.errors.ServeRejected`) are their
own channel: HTTP 429 plus a ``Retry-After`` header, never a 5xx,
because the request was refused rather than failed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import errors

SERVE_SCHEMA = "repro.serve/v1"

#: (exception class, HTTP status, CLI exit code), checked in order —
#: subclasses strictly before their bases, mirroring
#: ``repro.__main__.EXIT_CODES``. ``FarmQuarantine`` (exit 6) and the
#: base ``FarmError`` get statuses of their own so a client can tell
#: "your input broke the compiler" (500) from "backend workers kept
#: dying" (502) from "the service is draining" (503) from "your deadline
#: expired" (504).
ERROR_STATUS = (
    (errors.ParseError, 400, 2),
    (errors.SemanticError, 400, 2),
    (errors.UsageError, 400, 2),
    (errors.VerificationError, 422, 3),
    (errors.IRError, 422, 3),
    (errors.TransformError, 500, 4),
    (errors.SchedulingError, 500, 4),
    (errors.SimulationError, 500, 5),
    (errors.FarmInterrupted, 503, 130),
    (errors.FarmTimeout, 504, 7),
    (errors.FarmQuarantine, 502, 6),
    (errors.StorageError, 500, 8),
)

#: Status for admission rejections; carries Retry-After, never 5xx.
STATUS_REJECTED = 429

#: Status for an explicitly NACKed request queried via GET /v1/requests.
STATUS_NACKED = 410


def status_for(exc: errors.ReproError) -> Tuple[int, int]:
    """(HTTP status, CLI exit code) for a library failure."""
    for klass, status, exit_code in ERROR_STATUS:
        if isinstance(exc, klass):
            return status, exit_code
    return 500, 1


def error_body(exc: errors.ReproError) -> dict:
    """The structured JSON error body for *exc*, incidents included."""
    status, exit_code = status_for(exc)
    error = {
        "type": type(exc).__name__,
        "message": str(exc),
        "http_status": status,
        "exit_code": exit_code,
    }
    workload = getattr(exc, "workload", None)
    if workload:
        error["workload"] = workload
    traceback = getattr(exc, "worker_traceback", None)
    if traceback:
        error["worker_traceback"] = traceback
    incidents = getattr(exc, "incidents", None)
    if incidents:
        error["incidents"] = list(incidents)
    if isinstance(exc, errors.VerificationError):
        error["problems"] = list(exc.problems)
    if isinstance(exc, errors.ServeRejected):
        error["reason"] = exc.reason
        error["retry_after_s"] = exc.retry_after_s
    return {"schema": SERVE_SCHEMA, "error": error}


@dataclass
class CompileRequest:
    """One validated compile/evaluate request.

    Exactly one of ``workload`` (registry name), ``source`` (inline
    mini-C), or ``ir`` (inline IR assembly) names the program. Inline
    programs take their entry arguments from ``args`` (integers).
    """

    id: str
    client: str = "anonymous"
    workload: Optional[str] = None
    source: Optional[str] = None
    ir: Optional[str] = None
    entry: str = "main"
    args: Tuple[int, ...] = ()
    priority: int = 1
    deadline_s: Optional[float] = None
    #: Extras: ship the farm worker's span trace and the server-side
    #: request-lifecycle trace in the response (dropped at shed level 1+).
    trace: bool = False

    @property
    def program_name(self) -> str:
        return self.workload or f"inline:{self.entry}"

    def payload(self) -> dict:
        """The JSON-safe form journalled on accept (and re-playable)."""
        data = {
            "id": self.id,
            "client": self.client,
            "entry": self.entry,
            "args": list(self.args),
            "priority": self.priority,
            "trace": self.trace,
        }
        if self.workload is not None:
            data["workload"] = self.workload
        if self.source is not None:
            data["source"] = self.source
        if self.ir is not None:
            data["ir"] = self.ir
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        return data

    @classmethod
    def from_json(cls, data, default_id: str) -> "CompileRequest":
        """Validate a decoded request body; UsageError on any bad field."""
        if not isinstance(data, dict):
            raise errors.UsageError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        programs = [
            key for key in ("workload", "source", "ir") if data.get(key)
        ]
        if len(programs) != 1:
            raise errors.UsageError(
                "request must name exactly one of 'workload', 'source', "
                f"or 'ir' (got {programs or 'none'})"
            )
        workload = data.get("workload")
        if workload is not None:
            from repro.workloads.registry import all_names

            if workload not in all_names():
                raise errors.UsageError(
                    f"unknown workload {workload!r}; see GET /v1/workloads"
                )
        request_id = data.get("id", default_id)
        if not isinstance(request_id, str) or not request_id:
            raise errors.UsageError("'id' must be a non-empty string")
        client = data.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise errors.UsageError("'client' must be a non-empty string")
        priority = data.get("priority", 1)
        if not isinstance(priority, int) or isinstance(priority, bool) \
                or priority < 0:
            raise errors.UsageError(
                f"'priority' must be a non-negative integer, got {priority!r}"
            )
        deadline_s = data.get("deadline_s")
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) \
                    or isinstance(deadline_s, bool) or deadline_s <= 0:
                raise errors.UsageError(
                    f"'deadline_s' must be a positive number, got {deadline_s!r}"
                )
            deadline_s = float(deadline_s)
        args = data.get("args", [])
        if not isinstance(args, list) or any(
            not isinstance(a, int) or isinstance(a, bool) for a in args
        ):
            raise errors.UsageError("'args' must be a list of integers")
        entry = data.get("entry", "main")
        if not isinstance(entry, str) or not entry:
            raise errors.UsageError("'entry' must be a non-empty string")
        return cls(
            id=request_id,
            client=client,
            workload=workload,
            source=data.get("source"),
            ir=data.get("ir"),
            entry=entry,
            args=tuple(args),
            priority=priority,
            deadline_s=deadline_s,
            trace=bool(data.get("trace", False)),
        )


@dataclass
class Outcome:
    """What a backend hands back for one executed request.

    ``summary`` is the deterministic payload (the
    :meth:`~repro.farm.farm.WorkloadSummary.comparable` content);
    ``metrics`` is that request's :class:`~repro.farm.metrics.CompileMetrics`
    (folded into the daemon's aggregate); ``trace`` is the optional farm
    span tree; ``retries`` counts supervisor re-dispatches that happened
    on the way to this answer.
    """

    summary: dict
    from_cache: bool = False
    wall_s: float = 0.0
    metrics: Optional[object] = None
    trace: Optional[dict] = None
    retries: int = 0


def response_body(
    request: CompileRequest,
    outcome: Outcome,
    shed_level: int,
    server_trace: Optional[dict] = None,
) -> dict:
    """The success body. Deterministic fields first; timings are advisory."""
    body = {
        "schema": SERVE_SCHEMA,
        "id": request.id,
        "client": request.client,
        "workload": request.program_name,
        "summary": outcome.summary,
        "from_cache": outcome.from_cache,
        "shed_level": shed_level,
        "wall_s": outcome.wall_s,
    }
    if outcome.metrics is not None:
        body["metrics"] = outcome.metrics.to_dict()
    if outcome.trace is not None:
        body["trace"] = outcome.trace
    if server_trace is not None:
        body["server_trace"] = server_trace
    return body


def dumps(body: dict) -> bytes:
    return (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
