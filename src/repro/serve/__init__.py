"""Compile-as-a-service: the ``repro serve`` daemon and its client.

The daemon (:mod:`repro.serve.server`) accepts compile/evaluate requests
over HTTP/JSON and dispatches them onto the supervised build farm, with
admission control, a four-rung overload-shedding ladder, per-request
deadlines, and a write-ahead request journal
(:mod:`repro.serve.journal`) that makes accepted work survive — or be
explicitly NACKed across — a daemon crash. The wire contract lives in
:mod:`repro.serve.protocol`; :mod:`repro.serve.client` is the stdlib
client the tests, benchmark, and chaos harness drive it with.
"""

from repro.serve.client import ServeClient, ServeResponse
from repro.serve.journal import (
    SERVE_JOURNAL_SCHEMA,
    ServeJournal,
    ServeJournalState,
    load_serve_journal,
)
from repro.serve.protocol import (
    ERROR_STATUS,
    SERVE_SCHEMA,
    CompileRequest,
    Outcome,
    error_body,
    response_body,
    status_for,
)
from repro.serve.server import (
    SHED_LEVELS,
    CompileServer,
    ServeOptions,
    ServerHandle,
    TokenBucket,
    start_in_thread,
)

__all__ = [
    "ERROR_STATUS",
    "SERVE_JOURNAL_SCHEMA",
    "SERVE_SCHEMA",
    "SHED_LEVELS",
    "CompileRequest",
    "CompileServer",
    "Outcome",
    "ServeClient",
    "ServeJournal",
    "ServeJournalState",
    "ServeOptions",
    "ServeResponse",
    "ServerHandle",
    "TokenBucket",
    "error_body",
    "load_serve_journal",
    "response_body",
    "start_in_thread",
    "status_for",
]
