"""The serve daemon's write-ahead request journal: ``repro.serve.journal/v1``.

Same discipline as the farm's completion journal
(:mod:`repro.farm.journal`): one JSON line per event, flushed and
fsynced before the daemon acts on it, atomic header, truncated-tail
tolerance. The records:

* ``header`` — schema and the writing daemon's pid;
* ``accept`` — a request was admitted; the full validated payload rides
  along so a recovering daemon knows exactly what was promised;
* ``respond`` — the request was answered; status and body verbatim, so
  ``GET /v1/requests/<id>`` replays the identical bytes after a restart;
* ``nack`` — the request was explicitly abandoned (shed after accept,
  deadline expiry, or server death), with the reason.

**Recovery contract**: a daemon restarted over an existing journal
resolves every ``accept`` — answered requests replay their recorded
response, anything still pending is NACKed with reason
``server-restart`` — so an accepted request is *never* silently lost: a
client that saw its connection die re-queries ``GET /v1/requests/<id>``
and gets either the original answer or an explicit 410.

A request id may be re-submitted after a NACK; the journal is replayed
in order, so a later ``accept`` supersedes the earlier ``nack`` and the
final state is whatever happened last.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import UsageError
from repro.farm.cache import atomic_write_bytes

SERVE_JOURNAL_SCHEMA = "repro.serve.journal/v1"

#: Terminal request states after replaying a journal in order.
PENDING, DONE, NACKED = "pending", "done", "nacked"


@dataclass
class ServeJournalState:
    """A journal file parsed and replayed into per-request final states."""

    header: dict
    #: id -> last accepted payload.
    accepts: Dict[str, dict] = field(default_factory=dict)
    #: id -> {"status": int, "body": dict} for the last response.
    responses: Dict[str, dict] = field(default_factory=dict)
    #: id -> reason for the last NACK.
    nacks: Dict[str, str] = field(default_factory=dict)
    #: id -> PENDING | DONE | NACKED (the record seen last wins).
    states: Dict[str, str] = field(default_factory=dict)
    #: Accept order, first occurrence of each id.
    order: List[str] = field(default_factory=list)
    #: True when the file ended in a partial line (SIGKILL mid-append).
    truncated: bool = False

    def unresolved(self) -> List[str]:
        """Accepted ids whose latest state is still pending."""
        return [
            rid for rid in self.order if self.states.get(rid) == PENDING
        ]


def load_serve_journal(path) -> ServeJournalState:
    """Parse a serve journal; raises :class:`UsageError` when unusable."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise UsageError(f"cannot read serve journal {path}: {exc}") from None
    state: Optional[ServeJournalState] = None
    truncated = False
    for line in text.split("\n"):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            # A SIGKILLed writer leaves at most one partial trailing line;
            # the half-written record's request simply resolves as pending
            # and is NACKed on recovery.
            truncated = True
            break
        kind = record.get("kind")
        if kind == "header":
            if record.get("schema") != SERVE_JOURNAL_SCHEMA:
                raise UsageError(
                    f"serve journal {path} has schema "
                    f"{record.get('schema')!r}, expected "
                    f"{SERVE_JOURNAL_SCHEMA!r}"
                )
            state = ServeJournalState(header=record)
        elif state is None:
            raise UsageError(
                f"serve journal {path} does not start with a header"
            )
        elif kind == "accept":
            rid = record["id"]
            state.accepts[rid] = record.get("request", {})
            if rid not in state.states:
                state.order.append(rid)
            state.states[rid] = PENDING
        elif kind == "respond":
            rid = record["id"]
            state.responses[rid] = {
                "status": record["status"],
                "body": record["body"],
            }
            state.states[rid] = DONE
        elif kind == "nack":
            rid = record["id"]
            state.nacks[rid] = record.get("reason", "")
            state.states[rid] = NACKED
    if state is None:
        raise UsageError(f"serve journal {path} does not start with a header")
    state.truncated = truncated
    return state


class ServeJournal:
    """Append-only, fsync-per-record writer for one daemon lifetime."""

    def __init__(self, path, resume: bool = False):
        self.path = Path(path)
        if resume and self.path.exists():
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            header = {
                "kind": "header",
                "schema": SERVE_JOURNAL_SCHEMA,
                "pid": os.getpid(),
            }
            line = json.dumps(header, sort_keys=True) + "\n"
            atomic_write_bytes(self.path, line.encode("utf-8"))
            self._handle = open(self.path, "a", encoding="utf-8")

    def _append(self, record: dict):
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def accept(self, request_id: str, payload: dict):
        self._append({"kind": "accept", "id": request_id, "request": payload})

    def respond(self, request_id: str, status: int, body: dict):
        self._append({
            "kind": "respond", "id": request_id,
            "status": status, "body": body,
        })

    def nack(self, request_id: str, reason: str):
        self._append({"kind": "nack", "id": request_id, "reason": reason})

    def close(self):
        try:
            self._handle.close()
        except OSError:
            pass


def recover(path, resume: bool) -> tuple:
    """(journal writer, replayed state, newly NACKed ids) for daemon boot.

    With ``resume`` and an existing journal: load it, then append a
    ``nack`` for every accepted-but-unresolved request so the on-disk
    state accounts for all promised work before the daemon serves its
    first new request. Without ``resume`` the journal is truncated fresh
    (an explicit choice — mixing two daemons' promises in one file would
    make ``GET /v1/requests`` lie).
    """
    path = Path(path)
    state = None
    nacked: List[str] = []
    if resume and path.exists():
        state = load_serve_journal(path)
        journal = ServeJournal(path, resume=True)
        for rid in state.unresolved():
            journal.nack(rid, "server-restart")
            state.nacks[rid] = "server-restart"
            state.states[rid] = NACKED
            nacked.append(rid)
    else:
        journal = ServeJournal(path, resume=False)
    return journal, state, nacked
