"""The serve daemon's write-ahead request journal: ``repro.serve.journal/v2``.

Same discipline as the farm's completion journal
(:mod:`repro.farm.journal`): one line per event, flushed and fsynced
before the daemon acts on it, atomic unframed header, truncated-tail
tolerance — and, since v2, every appended line is a checksummed
envelope (:mod:`repro.storage.framing`) so interior bit flips are
detected instead of replayed to clients. The records:

* ``header`` — schema and the writing daemon's pid;
* ``accept`` — a request was admitted; the full validated payload rides
  along so a recovering daemon knows exactly what was promised;
* ``respond`` — the request was answered; status and body verbatim, so
  ``GET /v1/requests/<id>`` replays the identical bytes after a restart;
* ``nack`` — the request was explicitly abandoned (shed after accept,
  deadline expiry, or server death), with the reason.

**Recovery contract**: a daemon restarted over an existing journal
resolves every ``accept`` — answered requests replay their recorded
response, anything still pending is NACKed with reason
``server-restart`` — so an accepted request is *never* silently lost: a
client that saw its connection die re-queries ``GET /v1/requests/<id>``
and gets either the original answer or an explicit 410.

**Corruption contract**: a record failing its checksum (or unparseable
in the file's interior) is skipped and counted
(:attr:`ServeJournalState.corrupt`), never replayed. A corrupt
``respond`` therefore leaves its request pending, and recovery NACKs it
— the client gets an honest 410, never the corrupted response bytes.
Only an unparseable *final* line is a truncated tail. v1 journals (bare
records) still load; a resumed daemon appends v2 envelopes to them,
which the loader also accepts in v1 mode.

A request id may be re-submitted after a NACK; the journal is replayed
in order, so a later ``accept`` supersedes the earlier ``nack`` and the
final state is whatever happened last.

A failed append raises :class:`~repro.errors.JournalWriteError` — the
daemon must not promise (or answer) work it cannot journal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import JournalWriteError, UsageError
from repro.storage.atomic import atomic_write_bytes
from repro.storage.faults import corrupt_bytes, fault_error, storage_fault
from repro.storage.framing import (
    TRUNCATED,
    VALID,
    canonical_json,
    classify_lines,
    frame_record,
)

SERVE_JOURNAL_SCHEMA = "repro.serve.journal/v2"
SERVE_JOURNAL_SCHEMA_V1 = "repro.serve.journal/v1"

#: Accepted schemas -> whether body lines are checksummed envelopes.
_KNOWN_SCHEMAS = {SERVE_JOURNAL_SCHEMA: True, SERVE_JOURNAL_SCHEMA_V1: False}

#: Terminal request states after replaying a journal in order.
PENDING, DONE, NACKED = "pending", "done", "nacked"


@dataclass
class ServeJournalState:
    """A journal file parsed and replayed into per-request final states."""

    header: dict
    #: id -> last accepted payload.
    accepts: Dict[str, dict] = field(default_factory=dict)
    #: id -> {"status": int, "body": dict} for the last response.
    responses: Dict[str, dict] = field(default_factory=dict)
    #: id -> reason for the last NACK.
    nacks: Dict[str, str] = field(default_factory=dict)
    #: id -> PENDING | DONE | NACKED (the record seen last wins).
    states: Dict[str, str] = field(default_factory=dict)
    #: Accept order, first occurrence of each id.
    order: List[str] = field(default_factory=list)
    #: True when the file ended in a partial line (SIGKILL mid-append).
    truncated: bool = False
    #: Records that parsed (header excluded) and passed their checksum.
    valid: int = 0
    #: Interior records failing parse or checksum — skipped, counted,
    #: never replayed to a client.
    corrupt: int = 0

    def unresolved(self) -> List[str]:
        """Accepted ids whose latest state is still pending."""
        return [
            rid for rid in self.order if self.states.get(rid) == PENDING
        ]


def load_serve_journal(path) -> ServeJournalState:
    """Parse a serve journal; raises :class:`UsageError` when unusable."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise UsageError(f"cannot read serve journal {path}: {exc}") from None
    lines = [line for line in text.split("\n") if line]
    if not lines:
        raise UsageError(
            f"serve journal {path} does not start with a header"
        )
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise UsageError(
            f"serve journal {path} does not start with a header"
        ) from None
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise UsageError(
            f"serve journal {path} does not start with a header"
        )
    schema = header.get("schema")
    if schema not in _KNOWN_SCHEMAS:
        raise UsageError(
            f"serve journal {path} has schema "
            f"{schema!r}, expected {SERVE_JOURNAL_SCHEMA!r}"
        )
    state = ServeJournalState(header=header)
    for record, status in classify_lines(
        lines[1:], framed=_KNOWN_SCHEMAS[schema]
    ):
        if status == TRUNCATED:
            # A SIGKILLed writer leaves at most one partial trailing
            # line; the half-written record's request simply resolves as
            # pending and is NACKed on recovery.
            state.truncated = True
            break
        if status != VALID:
            state.corrupt += 1
            continue
        state.valid += 1
        kind = record.get("kind")
        if kind == "accept":
            rid = record["id"]
            state.accepts[rid] = record.get("request", {})
            if rid not in state.states:
                state.order.append(rid)
            state.states[rid] = PENDING
        elif kind == "respond":
            rid = record["id"]
            state.responses[rid] = {
                "status": record["status"],
                "body": record["body"],
            }
            state.states[rid] = DONE
        elif kind == "nack":
            rid = record["id"]
            state.nacks[rid] = record.get("reason", "")
            state.states[rid] = NACKED
    return state


class ServeJournal:
    """Append-only, fsync-per-record writer for one daemon lifetime."""

    def __init__(self, path, resume: bool = False):
        self.path = Path(path)
        if not (resume and self.path.exists()):
            header = {
                "kind": "header",
                "schema": SERVE_JOURNAL_SCHEMA,
                "pid": os.getpid(),
            }
            line = canonical_json(header) + "\n"
            try:
                atomic_write_bytes(self.path, line.encode("utf-8"))
            except OSError as exc:
                raise JournalWriteError(
                    f"cannot start serve journal {self.path}: {exc}",
                    path=str(self.path),
                ) from exc
        self._handle = open(self.path, "ab")

    def _append(self, record: dict):
        data = (frame_record(record) + "\n").encode("utf-8")
        fault = storage_fault("journal-append", self.path)
        if fault is not None:
            kind, rng = fault
            if kind in ("enospc", "eio"):
                raise JournalWriteError(
                    f"cannot append to serve journal {self.path}: "
                    f"{fault_error(kind, 'journal-append', self.path)}",
                    path=str(self.path),
                )
            if kind == "lost-fsync":
                return
            data = corrupt_bytes(data, kind, rng)
        try:
            self._handle.write(data)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalWriteError(
                f"cannot append to serve journal {self.path}: {exc}",
                path=str(self.path),
            ) from exc

    def accept(self, request_id: str, payload: dict):
        self._append({"kind": "accept", "id": request_id, "request": payload})

    def respond(self, request_id: str, status: int, body: dict):
        self._append({
            "kind": "respond", "id": request_id,
            "status": status, "body": body,
        })

    def nack(self, request_id: str, reason: str):
        self._append({"kind": "nack", "id": request_id, "reason": reason})

    def close(self):
        try:
            self._handle.close()
        except OSError:
            pass


def recover(path, resume: bool) -> tuple:
    """(journal writer, replayed state, newly NACKed ids) for daemon boot.

    With ``resume`` and an existing journal: load it, then append a
    ``nack`` for every accepted-but-unresolved request so the on-disk
    state accounts for all promised work before the daemon serves its
    first new request. Because a corrupt ``respond`` record leaves its
    request pending, corrupted answers are NACKed here too — replayed
    garbage is structurally impossible. Without ``resume`` the journal
    is truncated fresh (an explicit choice — mixing two daemons'
    promises in one file would make ``GET /v1/requests`` lie).
    """
    path = Path(path)
    state = None
    nacked: List[str] = []
    if resume and path.exists():
        state = load_serve_journal(path)
        journal = ServeJournal(path, resume=True)
        for rid in state.unresolved():
            journal.nack(rid, "server-restart")
            state.nacks[rid] = "server-restart"
            state.states[rid] = NACKED
            nacked.append(rid)
    else:
        journal = ServeJournal(path, resume=False)
    return journal, state, nacked
