"""A minimal stdlib client for the serve daemon.

Used by the tests, the serve benchmark, and the chaos harness; it is
deliberately thin — ``http.client`` with one connection per request,
mirroring the daemon's ``Connection: close`` discipline — so what the
tests exercise is the daemon, not a clever client.

Responses come back as :class:`ServeResponse` (status, headers, decoded
JSON body); transport-level failures raise the underlying ``OSError``
so a chaos harness can tell "the server refused/died" apart from "the
server answered with an error body".
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class ServeResponse:
    status: int
    headers: Dict[str, str]
    body: dict

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> Optional[int]:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None


class ServeClient:
    """Talk to one daemon at ``host:port``; one connection per call."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> ServeResponse:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
            lowered = {
                key.lower(): value for key, value in response.getheaders()
            }
            return ServeResponse(
                status=response.status, headers=lowered, body=decoded
            )
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def compile(self, **fields) -> ServeResponse:
        """POST /v1/compile; fields mirror the request schema
        (``workload``/``source``/``ir``, ``id``, ``client``,
        ``priority``, ``deadline_s``, ``trace``, ``args``...)."""
        return self._request("POST", "/v1/compile", fields)

    def request_status(self, request_id: str) -> ServeResponse:
        return self._request("GET", f"/v1/requests/{request_id}")

    def healthz(self) -> ServeResponse:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> ServeResponse:
        return self._request("GET", "/v1/metrics")

    def workloads(self) -> ServeResponse:
        return self._request("GET", "/v1/workloads")

    def drain(self) -> ServeResponse:
        return self._request("POST", "/v1/drain")

    # ------------------------------------------------------------------
    # Orchestration helpers
    # ------------------------------------------------------------------
    def wait_ready(self, timeout: float = 30.0, interval: float = 0.05):
        """Poll /v1/healthz until the daemon answers; OSError on timeout."""
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                response = self.healthz()
                if response.ok:
                    return response
            except OSError as exc:
                last = exc
            time.sleep(interval)
        raise OSError(
            f"serve daemon at {self.host}:{self.port} not ready "
            f"within {timeout}s: {last}"
        )
