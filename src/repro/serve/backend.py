"""Backend executors for the serve daemon.

:class:`FarmBackend` is the production path: every request becomes a
one-workload run on the **supervised** build farm
(:mod:`repro.farm.supervisor`), so a served compile inherits the whole
reliability substrate for free — worker heartbeats, the per-request
deadline enforced as the farm deadline, retry-with-backoff through the
supervisor's requeue-with-exclusion machinery when a worker crashes, and
the crash-loop circuit breaker. A request that quarantines surfaces as
:class:`~repro.errors.FarmQuarantine` (HTTP 502) with the incident
payloads attached; a request whose every attempt died on the deadline
surfaces as :class:`~repro.errors.FarmTimeout` (HTTP 504).

Inline programs (mini-C ``source`` or IR assembly ``ir``) are compiled
in-process: they carry no registry fingerprint, so they skip the cache
and the farm and run under the caller's thread directly.

The daemon's cache-only overload rung calls :meth:`FarmBackend.try_cache`,
which consults the shared evaluation cache under the *same* key the farm
workers use (:func:`repro.farm.farm.workload_eval_key`) — a served
cache answer is byte-identical to what a warm farm run would return.

Any object with ``evaluate(request, deadline_s, want_trace) -> Outcome``
and ``try_cache(request) -> Outcome | None`` can stand in (the tests use
stubs with controllable latency).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro import errors
from repro.farm.cache import PassCache
from repro.farm.farm import (
    FarmOptions,
    _summarize,
    build_farm,
    workload_eval_key,
)
from repro.farm.metrics import CompileMetrics
from repro.farm.supervisor import SupervisorOptions
from repro.obs import CounterSet, Tracer, activate_counters, activate_tracer
from repro.serve.protocol import CompileRequest, Outcome


class FarmBackend:
    """Dispatch served requests onto the supervised build farm."""

    def __init__(
        self,
        cache_root: Optional[str] = None,
        scale: int = 1,
        processors: Sequence[str] = ("medium",),
        estimate_mode: str = "exit-aware",
        retries: int = 1,
        supervised: bool = True,
        heartbeat_timeout_s: float = 10.0,
    ):
        self.cache_root = cache_root
        self.scale = scale
        self.processors = tuple(processors)
        self.estimate_mode = estimate_mode
        self.retries = retries
        self.supervised = supervised
        self.heartbeat_timeout_s = heartbeat_timeout_s

    # ------------------------------------------------------------------
    # Option plumbing
    # ------------------------------------------------------------------
    def _farm_options(
        self, deadline_s: Optional[float], trace: bool
    ) -> FarmOptions:
        supervisor = None
        if self.supervised:
            supervisor = SupervisorOptions(
                deadline_s=deadline_s,
                retries=self.retries,
                backoff_base_s=0.05,
                heartbeat_timeout_s=self.heartbeat_timeout_s,
            )
        return FarmOptions(
            jobs=1,
            cache_root=self.cache_root,
            scale=self.scale,
            processors=self.processors,
            estimate_mode=self.estimate_mode,
            trace=trace,
            supervisor=supervisor,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def evaluate(
        self,
        request: CompileRequest,
        deadline_s: Optional[float] = None,
        want_trace: bool = False,
    ) -> Outcome:
        if request.workload is not None:
            return self._evaluate_workload(request, deadline_s, want_trace)
        return self._evaluate_inline(request, want_trace)

    def _evaluate_workload(self, request, deadline_s, want_trace) -> Outcome:
        options = self._farm_options(deadline_s, want_trace)
        result = build_farm([request.workload], options)
        if result.quarantined:
            incidents = [q.to_dict() for q in result.quarantined]
            reasons = {q.reason for q in result.quarantined}
            if reasons == {"deadline"}:
                raise errors.FarmTimeout(
                    f"request {request.id}: workload {request.workload} "
                    f"exceeded its {deadline_s}s deadline on every attempt",
                    budget_s=deadline_s,
                )
            raise errors.FarmQuarantine(
                f"request {request.id}: workload {request.workload} "
                "quarantined by the crash-loop circuit breaker",
                incidents=incidents,
            )
        summary = result.summaries[0]
        retries = int(
            result.metrics.counters.get("farm.supervisor.retries").count
        )
        return Outcome(
            summary=summary.comparable(),
            from_cache=summary.from_cache,
            wall_s=summary.wall_s,
            metrics=result.metrics,
            trace=result.traces.get(summary.name),
            retries=retries,
        )

    def _evaluate_inline(self, request, want_trace) -> Outcome:
        from repro.frontend import compile_source
        from repro.ir.parser import parse_program
        from repro.pipeline import PipelineOptions, build_workload

        name = request.program_name
        started = time.perf_counter()
        if request.source is not None:
            program = compile_source(request.source, name=name)
        else:
            program = parse_program(request.ir, name=name)
        args = list(request.args)
        inputs = [lambda interp: list(args)]
        metrics = CompileMetrics()
        counters = CounterSet()
        tracer = Tracer() if want_trace else None
        with activate_counters(counters), activate_tracer(tracer):
            build = build_workload(
                name,
                program,
                inputs,
                PipelineOptions(),
                entry=request.entry,
                metrics=metrics,
            )
            summary = _summarize(
                build, "inline", self.processors, self.estimate_mode
            )
        wall = time.perf_counter() - started
        metrics.record_workload(
            name,
            wall,
            transactions=build.build_report.transactions,
            incidents=len(build.build_report.incidents),
        )
        metrics.counters = metrics.counters.merge(counters)
        return Outcome(
            summary=summary,
            from_cache=False,
            wall_s=wall,
            metrics=metrics,
            trace=tracer.to_dict() if tracer is not None else None,
        )

    # ------------------------------------------------------------------
    # Cache-only fast path (overload rung 2)
    # ------------------------------------------------------------------
    def try_cache(self, request: CompileRequest) -> Optional[Outcome]:
        """A warm evaluation-cache answer, or ``None`` (never builds)."""
        if self.cache_root is None or request.workload is None:
            return None
        from repro.workloads.registry import get_workload

        started = time.perf_counter()
        workload = get_workload(request.workload, scale=self.scale)
        key = workload_eval_key(
            workload, self._farm_options(None, trace=False)
        )
        cache = PassCache(self.cache_root)
        summary = cache.get_evaluation(key)
        if summary is None:
            return None
        wall = time.perf_counter() - started
        metrics = CompileMetrics()
        metrics.record_workload(
            workload.name,
            wall,
            from_cache=True,
            transactions=summary["report"].get("transactions", 0),
            incidents=len(summary["report"].get("incidents", [])),
        )
        metrics.record_cache_stats(cache.stats)
        return Outcome(
            summary=summary,
            from_cache=True,
            wall_s=wall,
            metrics=metrics,
        )
