"""Delta-debugging reduction of failing procedures.

Classic ddmin (Zeller & Hildebrandt) specialized to IR: given a
procedure and an *oracle* (``Procedure -> bool``, True when the failure
still reproduces), shrink the procedure by removing whole blocks, then
individual operations (which removes hyperblock members op by op),
iterating to a fixed point. Every step is deterministic — chunk
splitting, iteration order, and variant construction are pure functions
of the input — so the same failing procedure always minimizes to the
same artifact.

The oracle never sees the procedure being reduced: every candidate is a
fresh clone, so a throwing or mutating oracle cannot corrupt the
reduction state.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.ir.block import Block
from repro.ir.cloning import clone_procedure
from repro.ir.procedure import Procedure
from repro.sanitize.battery import run_battery

Oracle = Callable[[Procedure], bool]


# ----------------------------------------------------------------------
# Generic ddmin
# ----------------------------------------------------------------------
def _split(items: Sequence, n: int) -> List[List]:
    """*items* in n contiguous chunks, sizes differing by at most one."""
    chunks = []
    start = 0
    for i in range(n):
        size = (len(items) - start + (n - i - 1)) // (n - i)
        chunks.append(list(items[start:start + size]))
        start += size
    return [chunk for chunk in chunks if chunk]


def ddmin(items: Sequence, test: Callable[[List], bool]) -> List:
    """Minimal sublist of *items* for which *test* still holds.

    *test* must hold on the full list. The result is 1-minimal: removing
    any single remaining element makes *test* fail.
    """
    items = list(items)
    if not test(items):
        raise ValueError("ddmin: test does not hold on the full input")
    n = 2
    while len(items) >= 2:
        chunks = _split(items, n)
        reduced = False
        for chunk in chunks:
            if test(chunk):
                items = chunk
                n = 2
                reduced = True
                break
        if not reduced and n > 2:
            for skip in range(len(chunks)):
                complement = [
                    item
                    for j, chunk in enumerate(chunks)
                    if j != skip
                    for item in chunk
                ]
                if test(complement):
                    items = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
        if reduced:
            continue
        if n >= len(items):
            break
        n = min(len(items), n * 2)
    return items


# ----------------------------------------------------------------------
# IR-shaped reduction
# ----------------------------------------------------------------------
def _with_blocks(proc: Procedure, blocks: Sequence[Block]) -> Procedure:
    variant = Procedure(proc.name, params=list(proc.params))
    for block in blocks:
        variant.add_block(block.clone(block.label, preserve_uids=True))
    return variant


def _with_ops(proc: Procedure, items: Sequence[Tuple]) -> Procedure:
    kept = {id(op) for _, op in items}
    variant = Procedure(proc.name, params=list(proc.params))
    for block in proc:
        replacement = Block(
            label=block.label, fallthrough=block.fallthrough
        )
        for op in block.ops:
            if id(op) in kept:
                replacement.append(op.clone(preserve_uid=True))
        variant.add_block(replacement)
    return variant


def reduce_procedure(proc: Procedure, oracle: Oracle) -> Procedure:
    """Shrink *proc* while *oracle* keeps reproducing the failure."""
    current = clone_procedure(proc, preserve_uids=True)
    if not oracle(current):
        raise ValueError(
            "reduce_procedure: oracle does not hold on the input"
        )
    changed = True
    while changed:
        changed = False
        blocks = list(current)
        if len(blocks) > 1:
            kept = ddmin(
                blocks, lambda bs: oracle(_with_blocks(current, bs))
            )
            if len(kept) < len(blocks):
                current = _with_blocks(current, kept)
                changed = True
        items = [
            (block.label, op) for block in current for op in block.ops
        ]
        if len(items) > 1:
            kept = ddmin(
                items, lambda its: oracle(_with_ops(current, its))
            )
            if len(kept) < len(items):
                current = _with_ops(current, kept)
                changed = True
    return current


def sanitizer_oracle(signatures, tier: str = "fast") -> Oracle:
    """Oracle reproducing any of the given sanitizer finding signatures.

    Signatures are the uid-free ``(check, detail)`` pairs of
    :meth:`repro.sanitize.findings.Finding.signature`. Variants that
    crash any analysis count as "not reproducing" — reduction never
    propagates a new failure mode.
    """
    targets = {tuple(signature) for signature in signatures}

    def oracle(candidate: Procedure) -> bool:
        try:
            found = {
                finding.signature()
                for finding in run_battery(candidate, tier=tier)
            }
        except Exception:
            return False
        return bool(targets & found)

    return oracle
