"""Self-contained repro bundles for sanitizer findings.

A bundle is one directory under the repro root (``repro-bundles/`` by
default), named ``<pass>-<proc>-<sig8>`` after the failing pass, the
procedure, and a stable hash of the finding signatures. It contains
everything needed to reproduce the finding without the failing build:

* ``procedure.ir``   — the *minimized* procedure, printable IR text;
* ``attrs.json``     — operation attributes the text format does not
  carry (region tags, CPR markers), keyed by block label and op index,
  so :func:`load_bundle_procedure` restores the exact IR;
* ``finding.json``   — the findings, their signatures, and whether the
  text round-trip re-triggers them;
* ``pass.json``      — pass name, rung, transaction policy, sanitize
  tier;
* ``profile.json``   — the procedure's slice of the profile that drove
  the failing build (block entry counts), when one was in scope;
* ``machine.json``   — the paper's processor configurations;
* ``README.md``      — a how-to-reproduce walkthrough.

Bundle emission must never break a build: :func:`reduce_and_bundle`
swallows its own failures and returns ``None``.

Emission is **atomic**: every file is written into a hidden temp
directory beside the repro root which is renamed into place only once
complete, so a crash mid-shrink never leaves a half-bundle for
:func:`verify_bundle` or a CI artifact sweep to choke on. Stale temp
directories orphaned by crashed writers are swept on the next emission.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from typing import List, Optional

from repro.farm.fingerprint import stable_hash
from repro.ir.parser import parse_program
from repro.ir.procedure import Procedure
from repro.machine.processor import PAPER_PROCESSORS
from repro.reduce.reducer import reduce_procedure, sanitizer_oracle
from repro.sanitize.battery import run_battery
from repro.sanitize.findings import Finding
from repro.storage.atomic import fsync_dir

DEFAULT_REPRO_ROOT = "repro-bundles"

#: Operation attributes the printable IR format already carries; they
#: are re-derived by the parser and excluded from ``attrs.json``.
_FORMAT_CARRIED_ATTRS = ("target", "callee")


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _collect_attrs(proc: Procedure) -> dict:
    collected: dict = {}
    for block in proc:
        per_block = {}
        for index, op in enumerate(block.ops):
            attrs = {
                key: _json_safe(value)
                for key, value in sorted(op.attrs.items())
                if key not in _FORMAT_CARRIED_ATTRS
            }
            if attrs:
                per_block[str(index)] = attrs
        if per_block:
            collected[block.label.name] = per_block
    return collected


def bundle_name(pass_name: str, proc_name: str, signatures) -> str:
    digest = stable_hash(
        [f"{check}|{detail}" for check, detail in sorted(signatures)]
    )
    return f"{pass_name}-{proc_name}-{digest[:8]}"


#: Prefix of in-progress bundle directories (hidden, so scanners and
#: artifact sweeps skip them by default).
_BUNDLE_TMP_PREFIX = ".tmp-bundle-"

#: In-progress directories younger than this may belong to a live
#: writer; older ones were orphaned by a crash and are swept.
_BUNDLE_TMP_MAX_AGE_S = 3600.0


def sweep_bundle_litter(root: str, max_age_s: float = _BUNDLE_TMP_MAX_AGE_S,
                        now: Optional[float] = None) -> int:
    """Delete stale in-progress bundle directories; returns the count."""
    if not os.path.isdir(root):
        return 0
    if now is None:
        now = time.time()
    removed = 0
    for name in sorted(os.listdir(root)):
        if not name.startswith(_BUNDLE_TMP_PREFIX):
            continue
        stale = os.path.join(root, name)
        try:
            if now - os.stat(stale).st_mtime >= max_age_s:
                shutil.rmtree(stale)
                removed += 1
        except OSError:
            continue
    return removed


def emit_repro_bundle(
    root: str,
    proc: Procedure,
    findings: List[Finding],
    pass_name: str,
    rung: str = "full",
    tier: str = "fast",
    policy=None,
    profile=None,
    generator: Optional[dict] = None,
) -> str:
    """Write one bundle directory; returns its path.

    *generator*, when given, records how to regenerate the bundle's
    original input from scratch (fuzz seed, knobs, backends, the exact
    CLI command) in ``generator.json``; :func:`verify_bundle` then
    re-runs the differential oracle from that recipe.
    """
    signatures = sorted({f.signature() for f in findings})
    final = os.path.join(root, bundle_name(pass_name, proc.name, signatures))
    os.makedirs(root, exist_ok=True)
    sweep_bundle_litter(root)
    # Stage the whole bundle in a hidden temp directory, then rename it
    # into place: readers see a complete bundle or none at all.
    path = tempfile.mkdtemp(prefix=_BUNDLE_TMP_PREFIX, dir=root)

    ir_text = proc.format()
    _write(path, "procedure.ir", ir_text)
    _write_json(path, "attrs.json", _collect_attrs(proc))

    reparsed = load_bundle_procedure(path)
    survivors = {f.signature() for f in run_battery(reparsed, tier="fast")}
    reproduces = any(tuple(sig) in survivors for sig in signatures)
    _write_json(path, "finding.json", {
        "pass": pass_name,
        "rung": rung,
        "tier": tier,
        "findings": [f.to_dict() for f in findings],
        "signatures": [list(sig) for sig in signatures],
        "reproduces_from_text": reproduces,
    })
    _write_json(path, "pass.json", {
        "pass_name": pass_name,
        "rung": rung,
        "sanitize": tier,
        "policy": None if policy is None else {
            "verify": policy.verify,
            "differential": policy.differential,
            "step_budget": policy.step_budget,
        },
    })
    profile_slice = {"available": False}
    if profile is not None:
        profile_slice = {
            "available": True,
            "runs": profile.runs,
            "block_counts": {
                label: count
                for (name, label), count in
                sorted(profile.block_counts.items())
                if name == proc.name
            },
        }
    _write_json(path, "profile.json", profile_slice)
    if generator is not None:
        _write_json(path, "generator.json", generator)
    _write_json(path, "machine.json", {
        "processors": [
            {
                "name": p.name,
                "units": {
                    k: v for k, v in p.unit_counts.items()
                },
                "issue_width": p.issue_width,
            }
            for p in PAPER_PROCESSORS
        ],
    })
    _write(path, "README.md", _readme(pass_name, proc, findings))
    try:
        os.rename(path, final)
    except OSError:
        # The bundle already exists (names are content-addressed, so the
        # published copy is equivalent); discard the staged duplicate.
        shutil.rmtree(path, ignore_errors=True)
    fsync_dir(root)
    return final


def load_bundle_procedure(path: str) -> Procedure:
    """Parse ``procedure.ir`` and re-apply ``attrs.json``."""
    with open(os.path.join(path, "procedure.ir")) as handle:
        program = parse_program(handle.read())
    proc = next(iter(program.procedures.values()))
    attrs_path = os.path.join(path, "attrs.json")
    if os.path.exists(attrs_path):
        with open(attrs_path) as handle:
            stored = json.load(handle)
        for block in proc:
            for index, attrs in stored.get(block.label.name, {}).items():
                block.ops[int(index)].attrs.update(attrs)
    return proc


def verify_bundle(path: str) -> bool:
    """Does the bundle's failure still reproduce?

    Sanitizer bundles re-run the battery on the stored IR. Fuzz bundles
    (those carrying ``generator.json``) instead regenerate the original
    input from the recorded seed + knobs and re-run the differential
    oracle — one command reproduces the whole miscompile from two
    integers.
    """
    generator_path = os.path.join(path, "generator.json")
    if os.path.exists(generator_path):
        with open(generator_path) as handle:
            recipe = json.load(handle)
        return regenerate_and_check(recipe)
    with open(os.path.join(path, "finding.json")) as handle:
        finding = json.load(handle)
    proc = load_bundle_procedure(path)
    found = {f.signature() for f in run_battery(proc, tier="fast")}
    return any(
        tuple(sig) in found for sig in finding["signatures"]
    )


def regenerate_and_check(recipe: dict) -> bool:
    """Re-run the differential oracle from a ``generator.json`` recipe."""
    # Imported lazily: the fuzz oracle depends on the pipeline, which
    # must stay importable without dragging reduction in transitively.
    from repro.fuzz.generator import FuzzKnobs
    from repro.fuzz.oracle import run_seed
    from repro.pipeline import BACKENDS

    result = run_seed(
        recipe["seed"],
        knobs=FuzzKnobs.from_dict(recipe.get("knobs", {})),
        backends=recipe.get("backends") or BACKENDS,
        inject=recipe.get("inject"),
        shrink=False,
    )
    return result.status in ("divergence", "finding")


def reduce_and_bundle(
    root: str,
    proc: Procedure,
    findings: List[Finding],
    pass_name: str,
    rung: str = "full",
    tier: str = "fast",
    policy=None,
    profile=None,
) -> Optional[str]:
    """Minimize *proc* against its findings and emit a bundle.

    Returns the bundle path, or ``None`` when the findings do not
    reproduce standalone (e.g. differential-only context) or emission
    fails for any reason — a repro artifact is best-effort and must
    never take the build down with it.
    """
    try:
        oracle = sanitizer_oracle(
            [f.signature() for f in findings], tier="fast"
        )
        if not oracle(proc):
            return None
        minimized = reduce_procedure(proc, oracle)
        return emit_repro_bundle(
            root,
            minimized,
            findings,
            pass_name,
            rung=rung,
            tier=tier,
            policy=policy,
            profile=profile,
        )
    except Exception:
        return None


# ----------------------------------------------------------------------
def _write(path: str, name: str, content: str):
    with open(os.path.join(path, name), "w") as handle:
        handle.write(content if content.endswith("\n") else content + "\n")


def _write_json(path: str, name: str, payload):
    with open(os.path.join(path, name), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _readme(pass_name: str, proc: Procedure, findings) -> str:
    lines = [
        f"# Repro bundle: {pass_name} on {proc.name}",
        "",
        "Minimized by the delta-debugging reducer; the sanitizer "
        "findings below still trigger on `procedure.ir`.",
        "",
        "## Findings",
        "",
    ]
    lines.extend(f"- {f.format()}" for f in findings)
    lines.extend([
        "",
        "## Reproduce",
        "",
        "```python",
        "from repro.reduce.bundle import load_bundle_procedure",
        "from repro.sanitize import run_battery",
        "",
        f"proc = load_bundle_procedure({os.curdir!r})  "
        "# path of this directory",
        "for finding in run_battery(proc):",
        "    print(finding.format())",
        "```",
        "",
        "`attrs.json` restores op attributes (CPR tags, memory regions) "
        "the text format drops; `pass.json` and `profile.json` record "
        "the transaction context of the original failure.",
    ])
    return "\n".join(lines)
