"""Delta-debugging reduction and repro-bundle emission.

When ``--sanitize`` flags a miscompile, this package shrinks the
failing procedure to a minimal reproducer (:mod:`repro.reduce.reducer`)
and packages it with its pass configuration, profile slice, and machine
descriptions as a self-contained bundle (:mod:`repro.reduce.bundle`).
"""

from repro.reduce.bundle import (
    DEFAULT_REPRO_ROOT,
    bundle_name,
    emit_repro_bundle,
    load_bundle_procedure,
    reduce_and_bundle,
    verify_bundle,
)
from repro.reduce.reducer import (
    ddmin,
    reduce_procedure,
    sanitizer_oracle,
)

__all__ = [
    "DEFAULT_REPRO_ROOT",
    "bundle_name",
    "ddmin",
    "emit_repro_bundle",
    "load_bundle_procedure",
    "reduce_and_bundle",
    "reduce_procedure",
    "sanitizer_oracle",
    "verify_bundle",
]
