"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operands, unknown opcodes, broken invariants."""


class VerificationError(IRError):
    """The IR verifier found a structural violation.

    Carries the list of individual problem strings in :attr:`problems`.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:5])
        if len(self.problems) > 5:
            summary += f" ... ({len(self.problems)} problems total)"
        super().__init__(summary)


class SanitizerError(IRError):
    """The semantic sanitizer battery flagged one or more findings.

    Carries the structured :class:`~repro.sanitize.findings.Finding`
    objects in :attr:`findings` (empty when reconstructed from a bare
    message, e.g. across a process-pool boundary).
    """

    def __init__(self, message, findings=None):
        self.findings = list(findings) if findings else []
        super().__init__(message)


class ParseError(ReproError):
    """Raised by the frontend lexer/parser and the IR assembly parser."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class SemanticError(ReproError):
    """Raised by frontend semantic analysis (undefined names, type misuse)."""


class SimulationError(ReproError):
    """Raised by the functional simulator (bad memory access, fuel expiry)."""


class FuelExhausted(SimulationError):
    """The interpreter hit its operation budget; likely an infinite loop.

    Carries enough context to localize the runaway loop: the procedure and
    block being executed when the budget expired (:attr:`proc` and
    :attr:`block`, as strings) and the number of operations executed so far
    (:attr:`ops_executed`). All three are ``None`` when unknown.
    """

    def __init__(self, message, proc=None, block=None, ops_executed=None):
        self.proc = proc
        self.block = block
        self.ops_executed = ops_executed
        super().__init__(message)


class SchedulingError(ReproError):
    """Raised by the list scheduler (unschedulable op, resource misconfig)."""


class TransformError(ReproError):
    """Raised by an optimization pass when its precondition is violated."""


class BudgetExceeded(TransformError):
    """A pass transaction blew through its step budget and was rolled back."""


class MachineConfigError(ReproError):
    """Raised for inconsistent processor descriptions."""


class UsageError(ReproError):
    """A caller-supplied option or argument value is invalid.

    Raised for bad knob values that argparse cannot catch itself — a
    non-positive ``--jobs`` count, a garbage ``$REPRO_JOBS`` override,
    ``--resume`` without a journal. Maps to CLI exit code 2, the same as
    parse-level usage problems.
    """


class FarmError(ReproError):
    """Base class for build-farm supervision failures."""


class FarmInterrupted(FarmError):
    """A supervised farm run was stopped by SIGINT/SIGTERM.

    The supervisor drains gracefully: in-flight workers are killed, the
    completion journal stays valid, and this exception carries what is
    needed to pick the run back up — :attr:`journal_path` (``None`` when
    journaling was off), :attr:`completed` workload count, and the
    :attr:`signal_name` that triggered the drain.
    """

    def __init__(self, message, journal_path=None, completed=0,
                 signal_name=None):
        self.journal_path = journal_path
        self.completed = completed
        self.signal_name = signal_name
        super().__init__(message)


class FarmTimeout(FarmError):
    """A supervised farm run exhausted its global wall-clock budget.

    Workers are killed and the journal (when enabled, :attr:`journal_path`)
    remains valid, so ``--resume`` re-runs only the unfinished workloads.
    """

    def __init__(self, message, journal_path=None, completed=0,
                 budget_s=None):
        self.journal_path = journal_path
        self.completed = completed
        self.budget_s = budget_s
        super().__init__(message)


class FarmQuarantine(FarmError):
    """A farm run quarantined a workload the caller needed an answer for.

    The batch CLI reports quarantines on stderr and exits 6 without
    raising; the serving layer (:mod:`repro.serve`) instead needs an
    exception carrying the structured
    :class:`~repro.farm.journal.QuarantineIncident` payloads so they can
    cross the HTTP boundary intact (:attr:`incidents`, as dicts).
    """

    def __init__(self, message, incidents=None):
        self.incidents = list(incidents) if incidents else []
        super().__init__(message)


class StorageError(ReproError):
    """Base class for durable-storage integrity failures.

    Raised only where continuing would *lose* state the caller was
    promised (see :mod:`repro.storage`). Recoverable storage trouble —
    a corrupt cache entry, a flipped bit in a journal record — never
    raises: it is detected, quarantined or skipped, and reported as a
    :class:`~repro.storage.incidents.StorageIncident`.
    """


class JournalWriteError(StorageError):
    """A write-ahead journal append could not be made durable.

    The journals' crash-recovery contract is "journalled before acted
    on"; continuing past a failed append would silently break resume
    and replay, so the run aborts with its own exit code (8) instead.
    Carries the journal :attr:`path`.
    """

    def __init__(self, message, path=None):
        self.path = path
        super().__init__(message)


class ServeRejected(ReproError):
    """The compile service refused to admit a request (HTTP 429).

    Not a failure of the request itself: the server is protecting its
    queue. :attr:`reason` is one of ``throttle`` (the client's token
    bucket is empty), ``queue-full`` (the bounded request queue is at
    capacity), or ``shed`` (the overload ladder is dropping this class of
    work). :attr:`retry_after_s` is the server's advice for when to try
    again, surfaced as the ``Retry-After`` header.
    """

    def __init__(self, message, reason="queue-full", retry_after_s=1.0):
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)
