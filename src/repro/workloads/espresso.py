"""008.espresso proxy — two-level logic minimization cube operations.

The kernel intersects and merges bit-set "cubes" word by word; the empty-
intersection test is biased (most cube pairs are disjoint), and a rare
inner loop counts bits when cubes do overlap. Heavy integer logic traffic
with moderately biased branches, like espresso's set routines.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int P[2100];
int Q[2100];
int R[2100];

int main(int n) {
    int overlaps = 0;
    int weight = 0;
    int i = 0;
    while (i < n) {
        int a = P[i];
        int b = Q[i];
        int x = a & b;
        R[i] = a | b;
        if (x != 0) {
            overlaps += 1;
            int bits = 0;
            while (x != 0) {
                bits += x & 1;
                x = x >> 1;
            }
            weight += bits;
        }
        if (a == b) { R[i] = 0; }
        i += 1;
    }
    return overlaps * 1000 + weight;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=1111)
    count = 1600 * scale
    p_words = []
    q_words = []
    for _ in range(count):
        # Sparse masks: ~12% of pairs overlap.
        p_words.append(1 << rng.below(16))
        if rng.below(100) < 12:
            q_words.append(p_words[-1] | (1 << rng.below(16)))
        else:
            q_words.append((1 << rng.below(16)) << 16)

    def setup(interp):
        interp.poke_array("P", p_words)
        interp.poke_array("Q", q_words)
        return (count,)

    return Workload(
        name="008.espresso",
        source=SOURCE,
        inputs=[setup],
        description="cube intersection/merge over sparse bit sets",
        paper_benchmark="008.espresso",
        category="spec92",
    )
