"""Workload suite: mini-C proxies of the paper's 24 benchmarks.

Each module recreates the characteristic inner-loop branch structure of
one paper benchmark (see DESIGN.md section 4 for the substitution
rationale). :mod:`repro.workloads.registry` enumerates them in the paper's
Table 2 order.
"""

from repro.workloads.base import Lcg, Workload

__all__ = ["Lcg", "Workload"]
