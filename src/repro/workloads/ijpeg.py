"""132.ijpeg proxy — image transform with saturation clamps.

A butterfly-style integer transform per pixel pair followed by range
clamps that rarely fire: multiply-heavy arithmetic with biased branches,
like ijpeg's DCT/quantization loops.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int PIX[2200];
int OUT[2200];

int main(int n) {
    int i = 0;
    int clamped = 0;
    while (i < n) {
        int a = PIX[i];
        int b = PIX[i + 1];
        int s = (a + b) * 181;
        int d = (a - b) * 181;
        int t0 = (s + 128) >> 8;
        int t1 = (d + 128) >> 8;
        if (t0 > 255) { t0 = 255; clamped += 1; }
        if (t0 < 0) { t0 = 0; clamped += 1; }
        if (t1 > 255) { t1 = 255; clamped += 1; }
        if (t1 < 0 - 255) { t1 = 0 - 255; clamped += 1; }
        OUT[i] = t0;
        OUT[i + 1] = t1;
        i += 2;
    }
    return clamped;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=2323)
    pixels = 2000
    data = rng.ints(pixels + 2, 0, 160)

    def setup(interp):
        interp.poke_array("PIX", data)
        return (pixels,)

    return Workload(
        name="132.ijpeg",
        source=SOURCE,
        inputs=[setup] * max(1, scale),
        description="butterfly transform with rare saturation clamps",
        paper_benchmark="132.ijpeg",
        category="spec95",
    )
