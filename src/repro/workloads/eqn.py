"""eqn — equation-formatter token classification.

A chain of character-class tests per input character, heavily skewed to the
letter path (inline text), with rare special-character handling — the
moderate-speedup profile the paper reports for eqn (1.15-1.26).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[5200];
int COUNTS[8];

int main(int n) {
    int i = 0;
    int depth = 0;
    int out = 0;
    while (i < n) {
        int c = TEXT[i];
        if (c >= 97 && c <= 122) {
            out += 1;
        } else { if (c == 32) {
            COUNTS[0] += 1;
        } else { if (c == 94 || c == 95) {
            COUNTS[1] += 1;
            out += 2;
        } else { if (c == 123) {
            depth += 1;
            COUNTS[2] += 1;
        } else { if (c == 125) {
            depth -= 1;
            if (depth < 0) { return 0 - 1; }
            COUNTS[3] += 1;
        } else {
            COUNTS[4] += 1;
        } } } } }
        i += 1;
    }
    COUNTS[5] = out;
    return out + depth;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=707)
    length = 2600 * scale
    text = []
    depth = 0
    for _ in range(length):
        roll = rng.below(100)
        if roll < 70:
            text.append(97 + rng.below(26))  # letters
        elif roll < 85:
            text.append(32)  # space
        elif roll < 90:
            text.append(94 if rng.below(2) else 95)  # ^ or _
        elif roll < 95 or depth == 0:
            text.append(123)  # {
            depth += 1
        else:
            text.append(125)  # }
            depth -= 1

    def setup(interp):
        interp.poke_array("TEXT", text)
        return (len(text),)

    return Workload(
        name="eqn",
        source=SOURCE,
        inputs=[setup],
        description="character-class dispatch for equation formatting",
        paper_benchmark="eqn",
        category="util",
    )
