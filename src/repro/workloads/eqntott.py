"""023.eqntott proxy — the cmppt bit-vector comparison kernel.

eqntott spends its time comparing pairs of PLA term vectors element by
element inside a sort. The inner loop has short, data-dependent trip counts
and its exits are not strongly biased — exactly the profile that made
eqntott *lose* on the sequential/narrow machines in the paper (0.85/0.87)
while gaining on wider ones (1.23 wide/infinite).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int VECS[4400];

int main(int n) {
    int swaps = 0;
    int v = 0;
    while (v < n) {
        int base1 = v * 16;
        int base2 = base1 + 16;
        int r = 0;
        int k = 0;
        while (k < 16) {
            int a = VECS[base1 + k];
            int b = VECS[base2 + k];
            if (a < b) { r = 0 - 1; break; }
            if (a > b) { r = 1; break; }
            k += 1;
        }
        if (r > 0) { swaps += 1; }
        v += 1;
    }
    return swaps;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=1414)
    vector_count = 260 * scale
    words = []
    base_vector = [rng.below(4) for _ in range(16)]
    for _ in range(vector_count + 1):
        vector = list(base_vector)
        # Diverge at a random (often early-ish) position: short trip counts.
        position = rng.below(16)
        vector[position] = rng.below(4)
        words.extend(vector)

    def setup(interp):
        interp.poke_array("VECS", words)
        return (vector_count,)

    return Workload(
        name="023.eqntott",
        source=SOURCE,
        inputs=[setup],
        description="PLA term vector comparison with short trip counts",
        paper_benchmark="023.eqntott",
        category="spec92",
    )
