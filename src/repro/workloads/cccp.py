"""cccp — the GNU C preprocessor's copy-and-scan loop.

The hot path copies characters while watching for rare trigger characters
(directive hash after newline, comment start, macro-ish identifiers). The
paper reports strong gains for cccp (1.36 medium, 1.50 wide).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int SRC[5400];
int DST[5500];
int STATS[4];

int main(int n) {
    int i = 0;
    int j = 0;
    int directives = 0;
    int comments = 0;
    int lines = 0;
    while (i < n) {
        int c = SRC[i];
        DST[j] = c;
        j += 1;
        if (c == 10) {
            lines += 1;
            if (SRC[i + 1] == 35) { directives += 1; }
        }
        if (c == 47) {
            if (SRC[i + 1] == 42) { comments += 1; }
        }
        i += 1;
    }
    STATS[0] = directives;
    STATS[1] = comments;
    STATS[2] = lines;
    return j;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=909)
    length = 2600 * scale
    text = []
    for _ in range(length):
        roll = rng.below(100)
        if roll < 3:
            text.append(10)  # newline
        elif roll < 4:
            text.append(35)  # '#'
        elif roll < 5:
            text.append(47)  # '/'
        elif roll < 20:
            text.append(32)
        else:
            text.append(97 + rng.below(26))

    def setup(interp):
        interp.poke_array("SRC", text)
        return (len(text),)

    return Workload(
        name="cccp",
        source=SOURCE,
        inputs=[setup],
        description="preprocessor copy loop with rare directive triggers",
        paper_benchmark="cccp",
        category="util",
    )
