"""099.go proxy — board evaluation with unbiased branches.

go is the paper's worst case (0.96-1.02): its branches are data dependent
and close to 50/50, so profile-guided trace selection and CPR block growth
both starve. The proxy evaluates pseudo-random board positions with
several near-unbiased tests per point.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int BOARD[2100];
int INFL[2100];

int main(int n) {
    int black = 0;
    int white = 0;
    int contested = 0;
    int i = 0;
    while (i < n) {
        int v = BOARD[i];
        if (v > 500) {
            black += 1;
        } else {
            white += 1;
        }
        if ((v & 1) == 0) {
            INFL[i] = v >> 1;
        } else {
            INFL[i] = v + 3;
        }
        if ((v & 12) == 4) {
            contested += 1;
        }
        i += 1;
    }
    return black * 10000 + white + contested;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=2121)
    points = 2000
    board = rng.ints(points, 0, 999)

    def setup(interp):
        interp.poke_array("BOARD", board)
        return (points,)

    return Workload(
        name="099.go",
        source=SOURCE,
        inputs=[setup] * max(1, scale),
        description="board evaluation with ~50/50 data-dependent branches",
        paper_benchmark="099.go",
        category="spec95",
    )
