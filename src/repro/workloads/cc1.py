"""085.cc1 / 126.gcc proxies — compiler tokenizer and keyword dispatch.

A scanner loop classifying characters, consuming identifier/number runs,
and probing a small keyword table for each identifier: a mixed control
profile with mostly-biased branches plus some unpredictable dispatch,
matching the mid-pack gains the paper reports for gcc-family benchmarks.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[5300];
int KEYHASH[64];
int COUNTS[8];

int main(int n) {
    int i = 0;
    int idents = 0;
    int numbers = 0;
    int keywords = 0;
    int punct = 0;
    while (i < n) {
        int c = TEXT[i];
        if (c >= 97 && c <= 122) {
            int h = 0;
            while (c >= 97 && c <= 122) {
                h = (h * 31 + c) & 63;
                i += 1;
                c = TEXT[i];
            }
            idents += 1;
            if (KEYHASH[h] == 1) { keywords += 1; }
        } else { if (c >= 48 && c <= 57) {
            int v = 0;
            while (c >= 48 && c <= 57) {
                v = v * 10 + (c - 48);
                i += 1;
                c = TEXT[i];
            }
            numbers += 1;
            COUNTS[v & 7] += 1;
        } else { if (c == 32 || c == 10) {
            i += 1;
        } else {
            punct += 1;
            i += 1;
        } } }
    }
    return idents * 100 + keywords * 10 + numbers + punct;
}
"""


def _build(name: str, seed: int, length: int, keyword_density: int,
           paper: str, category: str) -> Workload:
    rng = Lcg(seed=seed)
    text = []
    while len(text) < length:
        roll = rng.below(100)
        if roll < 55:
            text.extend(
                97 + rng.below(26) for _ in range(rng.in_range(2, 8))
            )
        elif roll < 70:
            text.extend(
                48 + rng.below(10) for _ in range(rng.in_range(1, 4))
            )
        elif roll < 92:
            text.append(32)
        else:
            text.append(rng.choice([40, 41, 59, 43, 42, 61]))
    text = text[:length] + [0]
    keyhash = [
        1 if rng.below(100) < keyword_density else 0 for _ in range(64)
    ]

    def setup(interp):
        interp.poke_array("TEXT", text)
        interp.poke_array("KEYHASH", keyhash)
        return (length,)

    return Workload(
        name=name,
        source=SOURCE,
        inputs=[setup],
        description="compiler scanner with keyword-table probing",
        paper_benchmark=paper,
        category=category,
    )


def workload(scale: int = 1) -> Workload:
    return _build(
        name="085.cc1", seed=1919, length=2600 * scale,
        keyword_density=30, paper="085.cc1", category="spec92",
    )


def workload_126(scale: int = 1) -> Workload:
    return _build(
        name="126.gcc", seed=2020, length=2600 * scale,
        keyword_density=45, paper="126.gcc", category="spec95",
    )
