"""wc — line/word/character counting.

Several branches per character: end-of-input (rare), newline (rare),
whitespace classification (biased toward word characters), and the in-word
state transition (rare). A classic branch-height-bound byte loop.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[6200];
int STATS[4];

int main(int n) {
    int i = 0;
    int lines = 0;
    int words = 0;
    int chars = 0;
    int inword = 0;
    int c = TEXT[0];
    while (c != 0) {
        chars += 1;
        if (c == 10) { lines += 1; }
        if (c == 32 || c == 10 || c == 9) {
            inword = 0;
        } else {
            if (inword == 0) { words += 1; inword = 1; }
        }
        i += 1;
        c = TEXT[i];
    }
    STATS[0] = lines;
    STATS[1] = words;
    STATS[2] = chars;
    return words;
}
"""


def make_text(rng: Lcg, length: int):
    """English-like byte stream: ~15% spaces, ~2% newlines, rest letters."""
    text = []
    for _ in range(length):
        roll = rng.below(100)
        if roll < 2:
            text.append(10)  # '\n'
        elif roll < 17:
            text.append(32)  # ' '
        else:
            text.append(97 + rng.below(26))  # 'a'..'z'
    text.append(0)
    return text


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=303)
    text = make_text(rng, 3000 * scale)

    def setup(interp):
        interp.poke_array("TEXT", text)
        return (len(text) - 1,)

    return Workload(
        name="wc",
        source=SOURCE,
        inputs=[setup],
        description="word counting over an English-like byte stream",
        paper_benchmark="wc",
        category="util",
    )
