"""yacc — LR parser driver loop.

Each step looks up an action for (state, token): shifts dominate (~80%),
reduces are the cold path, and the stack-overflow guard never fires. The
shift path is a run of biased branches around table loads.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TOKENS[4200];
int ACTION[64];
int RLEN[8];
int RGOTO[8];
int STACK[1024];

int main(int n) {
    int sp = 0;
    int state = 0;
    int i = 0;
    int reduces = 0;
    while (i < n) {
        int tok = TOKENS[i];
        int act = ACTION[state * 8 + tok];
        if (act < 64) {
            STACK[sp] = state;
            sp += 1;
            state = act;
            i += 1;
        } else {
            int rule = act - 64;
            int len = RLEN[rule];
            sp -= len;
            if (sp < 0) { sp = 0; }
            state = RGOTO[rule] + (STACK[sp] & 3);
            if (state > 7) { state = 7; }
            reduces += 1;
            i += 1;
        }
        if (sp > 1000) { sp = 512; }
    }
    return reduces;
}
"""


def build_tables(rng: Lcg):
    """8 states x 8 tokens; ~80% of (state, token) cells shift."""
    action = []
    for state in range(8):
        for token in range(8):
            if rng.below(10) < 8:
                action.append(rng.below(8))  # shift to a state
            else:
                action.append(64 + rng.below(8))  # reduce rule
    rlen = [rng.in_range(1, 3) for _ in range(8)]
    rgoto = [rng.below(4) for _ in range(8)]
    return action, rlen, rgoto


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=606)
    action, rlen, rgoto = build_tables(rng)
    tokens = [rng.below(8) for _ in range(2200 * scale)]

    def setup(interp):
        interp.poke_array("TOKENS", tokens)
        interp.poke_array("ACTION", action)
        interp.poke_array("RLEN", rlen)
        interp.poke_array("RGOTO", rgoto)
        return (len(tokens),)

    return Workload(
        name="yacc",
        source=SOURCE,
        inputs=[setup],
        description="LR parser driver: shift-dominated action dispatch",
        paper_benchmark="yacc",
        category="util",
    )
