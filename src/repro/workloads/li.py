"""022.li / 130.li proxies — Lisp interpreter node dispatch.

The hot loop walks a heap of tagged nodes, dispatching on the type tag
through a chain of compares. Tag distribution is skewed but not extreme
(conses and fixnums dominate), so branches are only moderately biased —
matching li's modest speedups in the paper (1.03-1.08).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TAG[2100];
int VAL[2100];
int NEXT[2100];

int main(int n) {
    int sum = 0;
    int conses = 0;
    int node = 0;
    int k = 0;
    while (k < n) {
        int t = TAG[node];
        if (node < 0) { return 0 - 1; }
        if (t > 7) { return 0 - 2; }
        if (t == 0) {
            sum += VAL[node];
        } else { if (t == 1) {
            conses += 1;
            sum += 1;
        } else { if (t == 2) {
            sum -= VAL[node];
        } else { if (t == 3) {
            sum = sum ^ VAL[node];
        } else {
            sum = sum >> 1;
        } } } }
        node = NEXT[node];
        k += 1;
    }
    return sum + conses;
}
"""


def _build(seed: int, heap: int, steps: int, tag_weights):
    rng = Lcg(seed=seed)
    tags = []
    for _ in range(heap):
        roll = rng.below(100)
        total = 0
        for tag, weight in enumerate(tag_weights):
            total += weight
            if roll < total:
                tags.append(tag)
                break
        else:
            tags.append(len(tag_weights))
    values = rng.ints(heap, 0, 999)
    # A permutation-ish walk that stays in-range and cycles broadly.
    nexts = [(i * 7 + 13) % heap for i in range(heap)]

    def setup(interp):
        interp.poke_array("TAG", tags)
        interp.poke_array("VAL", values)
        interp.poke_array("NEXT", nexts)
        return (steps,)

    return setup


def workload(scale: int = 1) -> Workload:
    """022.li: fixnum-heavy heap."""
    setup = _build(
        seed=1212, heap=2000, steps=2400 * scale,
        tag_weights=(45, 30, 12, 8),
    )
    return Workload(
        name="022.li",
        source=SOURCE,
        inputs=[setup],
        description="tagged-node dispatch walk (fixnum-heavy heap)",
        paper_benchmark="022.li",
        category="spec92",
    )


def workload_130(scale: int = 1) -> Workload:
    """130.li: cons-heavy heap with a flatter tag mix."""
    setup = _build(
        seed=1313, heap=2000, steps=2400 * scale,
        tag_weights=(35, 40, 10, 10),
    )
    return Workload(
        name="130.li",
        source=SOURCE,
        inputs=[setup],
        description="tagged-node dispatch walk (cons-heavy heap)",
        paper_benchmark="130.li",
        category="spec95",
    )
