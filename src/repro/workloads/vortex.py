"""147.vortex proxy — object-database record validation and copy.

vortex is famously assertion-heavy: long runs of validity checks that
essentially never fail, followed by field copies. Those always-fall-through
branch runs are ideal CPR fodder, but the dominant memory traffic keeps the
overall speedup moderate (1.08 medium / 1.14 wide in the paper).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int RID[1100];
int RTYPE[1100];
int RLEN[1100];
int F1[1100];
int F2[1100];
int OUT1[1100];
int OUT2[1100];

int main(int n) {
    int copied = 0;
    int r = 0;
    while (r < n) {
        int id = RID[r];
        if (id <= 0) { return 0 - 1; }
        if (RTYPE[r] > 7) { return 0 - 2; }
        if (RLEN[r] > 64) { return 0 - 3; }
        if (RLEN[r] < 0) { return 0 - 4; }
        if (F1[r] == 0 - 1) { return 0 - 5; }
        OUT1[r] = F1[r];
        OUT2[r] = F2[r] + id;
        copied += 1;
        r += 1;
    }
    return copied;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=2525)
    records = 1000
    rid = [1 + rng.below(100000) for _ in range(records)]
    rtype = [rng.below(8) for _ in range(records)]
    rlen = [rng.below(65) for _ in range(records)]
    field1 = rng.ints(records, 0, 5000)
    field2 = rng.ints(records, 0, 5000)

    def setup(interp):
        interp.poke_array("RID", rid)
        interp.poke_array("RTYPE", rtype)
        interp.poke_array("RLEN", rlen)
        interp.poke_array("F1", field1)
        interp.poke_array("F2", field2)
        return (records,)

    return Workload(
        name="147.vortex",
        source=SOURCE,
        inputs=[setup] * max(1, 2 * scale),
        description="record validation (never-failing asserts) and copy",
        paper_benchmark="147.vortex",
        category="spec95",
    )
