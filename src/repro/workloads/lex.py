"""lex — table-driven DFA scanner.

Per character: a class lookup, a transition lookup, an accept test (rare)
and an error test (never taken). Load-to-branch dependence chains make this
branch-latency bound; the paper reports 1.97x on the wide machine.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[5200];
int CLASS[128];
int DELTA[256];
int COUNTS[16];

int main(int n) {
    int state = 0;
    int tokens = 0;
    int i = 0;
    while (i < n) {
        int c = TEXT[i];
        int cls = CLASS[c];
        state = DELTA[state * 16 + cls];
        if (state == 15) {
            COUNTS[cls] += 1;
            tokens += 1;
            state = 0;
        }
        if (state == 14) { return 0 - 1; }
        i += 1;
    }
    return tokens;
}
"""


def build_tables():
    """A small scanner: identifiers, numbers, whitespace; 16 states.

    State 15 is "accept" (rare: fires at token boundaries); state 14 is
    "error" (never reached on well-formed input).
    """
    char_class = [3] * 128  # 'other'
    for c in range(ord("a"), ord("z") + 1):
        char_class[c] = 0  # letter
    for c in range(ord("0"), ord("9") + 1):
        char_class[c] = 1  # digit
    for c in (32, 9, 10):
        char_class[c] = 2  # whitespace

    delta = [0] * 256
    # state 0: start -> 1 on letter, 2 on digit, stay on ws/other.
    delta[0 * 16 + 0] = 1
    delta[0 * 16 + 1] = 2
    delta[0 * 16 + 2] = 0
    delta[0 * 16 + 3] = 0
    # state 1: in identifier; letters/digits continue, ws/other accept.
    delta[1 * 16 + 0] = 1
    delta[1 * 16 + 1] = 1
    delta[1 * 16 + 2] = 15
    delta[1 * 16 + 3] = 15
    # state 2: in number; digits continue, anything else accepts.
    delta[2 * 16 + 0] = 15
    delta[2 * 16 + 1] = 2
    delta[2 * 16 + 2] = 15
    delta[2 * 16 + 3] = 15
    return char_class, delta


def make_text(rng: Lcg, length: int):
    """Identifier/number soup with whitespace separators."""
    text = []
    while len(text) < length:
        word_length = rng.in_range(3, 9)
        if rng.below(4) == 0:
            text.extend(48 + rng.below(10) for _ in range(word_length))
        else:
            text.extend(97 + rng.below(26) for _ in range(word_length))
        text.append(32)
    return text[:length]


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=505)
    char_class, delta = build_tables()
    text = make_text(rng, 2600 * scale)

    def setup(interp):
        interp.poke_array("TEXT", text)
        interp.poke_array("CLASS", char_class)
        interp.poke_array("DELTA", delta)
        return (len(text),)

    return Workload(
        name="lex",
        source=SOURCE,
        inputs=[setup],
        description="table-driven DFA scanner over identifier/number soup",
        paper_benchmark="lex",
        category="util",
    )
