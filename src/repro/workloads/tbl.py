"""tbl — table-formatter column scanning.

Per-character separator detection (tabs rare, newlines rarer) with per-line
column accounting; almost every character falls through both tests. The
paper reports tbl as a low-gain benchmark (1.02-1.14).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[5400];
int WIDTHS[64];

int main(int n) {
    int i = 0;
    int col = 0;
    int width = 0;
    int maxcols = 0;
    while (i < n) {
        int c = TEXT[i];
        if (c == 9) {
            if (width > WIDTHS[col]) { WIDTHS[col] = width; }
            col += 1;
            if (col > 63) { col = 63; }
            width = 0;
        } else { if (c == 10) {
            if (width > WIDTHS[col]) { WIDTHS[col] = width; }
            if (col > maxcols) { maxcols = col; }
            col = 0;
            width = 0;
        } else {
            width += 1;
        } }
        i += 1;
    }
    return maxcols;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=808)
    length = 2800 * scale
    text = []
    for _ in range(length):
        roll = rng.below(100)
        if roll < 6:
            text.append(9)  # tab
        elif roll < 9:
            text.append(10)  # newline
        else:
            text.append(97 + rng.below(26))

    def setup(interp):
        interp.poke_array("TEXT", text)
        return (len(text),)

    return Workload(
        name="tbl",
        source=SOURCE,
        inputs=[setup],
        description="column-width scanning with rare separators",
        paper_benchmark="tbl",
        category="util",
    )
