"""cmp — byte-wise file comparison.

Two exit branches per element (difference found, end of file), both almost
never taken until the very end; hand-unrolled 4x, giving runs of eight
consecutive highly biased branches — cmp is the paper's best case (2.87x on
the wide machine).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int FA[4200];
int FB[4200];

int main(int n) {
    int i = 0;
    while (1) {
        int a0 = FA[i];
        if (a0 != FB[i]) { return i; }
        if (a0 == 0) { return 0 - 1; }
        int a1 = FA[i + 1];
        if (a1 != FB[i + 1]) { return i + 1; }
        if (a1 == 0) { return 0 - 1; }
        int a2 = FA[i + 2];
        if (a2 != FB[i + 2]) { return i + 2; }
        if (a2 == 0) { return 0 - 1; }
        int a3 = FA[i + 3];
        if (a3 != FB[i + 3]) { return i + 3; }
        if (a3 == 0) { return 0 - 1; }
        i += 4;
    }
    return 0;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=202)
    length = 2400 * scale
    file_a = rng.ints(length, 1, 250)
    file_b = list(file_a)
    file_b[-1] = file_a[-1] + 1  # differ at the very end
    file_a += [0]
    file_b += [0]

    def setup(interp):
        interp.poke_array("FA", file_a)
        interp.poke_array("FB", file_b)
        return (0,)

    return Workload(
        name="cmp",
        source=SOURCE,
        inputs=[setup],
        description="4x-unrolled byte comparison of nearly identical files",
        paper_benchmark="cmp",
        category="util",
    )
