"""Workload infrastructure: definitions, inputs, deterministic data.

A :class:`Workload` bundles a mini-C source, one or more profiling inputs,
and metadata mapping it to the paper benchmark it stands in for. Inputs are
callables ``setup(interpreter) -> args`` poking data into memory and
returning the entry procedure's arguments.

All pseudo-random data comes from :class:`Lcg`, a fixed-seed linear
congruential generator, so every build and bench run is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.frontend import compile_source
from repro.ir.procedure import Program


class Lcg:
    """Deterministic 31-bit linear congruential generator."""

    def __init__(self, seed: int = 12345):
        self.state = seed & 0x7FFFFFFF

    def next(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return self.state

    def below(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        return self.next() % bound

    def in_range(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return low + self.below(high - low + 1)

    def choice(self, items):
        return items[self.below(len(items))]

    def ints(self, count: int, low: int, high: int) -> List[int]:
        return [self.in_range(low, high) for _ in range(count)]


@dataclass
class Workload:
    """One benchmark: source program plus inputs plus provenance."""

    name: str
    source: str
    inputs: List[Callable] = field(default_factory=list)
    description: str = ""
    paper_benchmark: str = ""
    category: str = "util"  # 'spec92', 'spec95', or 'util'
    entry: str = "main"

    def compile(self) -> Program:
        """Lower the mini-C source to a fresh IR program."""
        return compile_source(self.source, name=self.name)


def poke_and_args(array_values: dict, args: tuple) -> Callable:
    """Build an input callable writing *array_values* and passing *args*."""

    def setup(interp):
        for array_name, values in array_values.items():
            interp.poke_array(array_name, values)
        return args

    return setup
