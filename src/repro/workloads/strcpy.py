"""strcpy — the paper's own kernel (Section 6): unrolled string copy.

The inner loop is hand-unrolled 8x the way IMPACT's preprocessing would
have it: all loads index off the iteration base, exit branches are almost
never taken (probability ~ 1/length each), and the loop-back branch is
predominantly taken — exercising ICBM's taken variation.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int A[4200];
int B[4200];

int main(int n) {
    int a = 0;
    int b = 0;
    int c = A[0];
    if (c == 0) { return 0; }
    do {
        B[b] = c;
        c = A[a + 1];
        if (c == 0) { break; }
        B[b + 1] = c;
        c = A[a + 2];
        if (c == 0) { break; }
        B[b + 2] = c;
        c = A[a + 3];
        if (c == 0) { break; }
        B[b + 3] = c;
        c = A[a + 4];
        if (c == 0) { break; }
        B[b + 4] = c;
        c = A[a + 5];
        if (c == 0) { break; }
        B[b + 5] = c;
        c = A[a + 6];
        if (c == 0) { break; }
        B[b + 6] = c;
        c = A[a + 7];
        if (c == 0) { break; }
        B[b + 7] = c;
        c = A[a + 8];
        a += 8;
        b += 8;
    } while (c != 0);
    return b;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=101)
    length = 2000 * scale
    text = rng.ints(length, 1, 255) + [0]

    def make_input(values):
        def setup(interp):
            interp.poke_array("A", values)
            return (len(values) - 1,)

        return setup

    return Workload(
        name="strcpy",
        source=SOURCE,
        inputs=[make_input(text)],
        description="8x-unrolled string copy (paper Section 6 kernel)",
        paper_benchmark="strcpy",
        category="util",
    )
