"""Registry of all workloads, in the paper's Table 2 presentation order."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads import (
    cc1,
    cccp,
    cmp,
    compress,
    ear,
    eqn,
    eqntott,
    espresso,
    go,
    grep,
    ijpeg,
    lex,
    li,
    m88ksim,
    perl,
    sc,
    strcpy,
    tbl,
    vortex,
    wc,
    yacc,
)
from repro.workloads.base import Workload

#: Factory per benchmark name, ordered as in the paper's Table 2.
FACTORIES: Dict[str, Callable[..., Workload]] = {
    "008.espresso": espresso.workload,
    "022.li": li.workload,
    "023.eqntott": eqntott.workload,
    "026.compress": compress.workload,
    "056.ear": ear.workload,
    "072.sc": sc.workload,
    "085.cc1": cc1.workload,
    "099.go": go.workload,
    "124.m88ksim": m88ksim.workload,
    "126.gcc": cc1.workload_126,
    "129.compress": compress.workload_129,
    "130.li": li.workload_130,
    "132.ijpeg": ijpeg.workload,
    "134.perl": perl.workload,
    "147.vortex": vortex.workload,
    "cccp": cccp.workload,
    "cmp": cmp.workload,
    "eqn": eqn.workload,
    "grep": grep.workload,
    "lex": lex.workload,
    "strcpy": strcpy.workload,
    "tbl": tbl.workload,
    "wc": wc.workload,
    "yacc": yacc.workload,
}

SPEC92 = [name for name in FACTORIES if name[0].isdigit() and int(
    name.split(".")[0]) < 99]
SPEC95 = [
    "099.go", "124.m88ksim", "126.gcc", "129.compress", "130.li",
    "132.ijpeg", "134.perl", "147.vortex",
]
UTILITIES = [
    "cccp", "cmp", "eqn", "grep", "lex", "strcpy", "tbl", "wc", "yacc",
]


def all_names() -> List[str]:
    return list(FACTORIES)


def resolve_subset(spec: str = "") -> List[str]:
    """Parse a comma-separated subset spec into validated registry names.

    Empty (or ``None``) selects the whole registry in Table 2 order.
    Unknown names raise :class:`ValueError` so CLI callers can report a
    usage error instead of a traceback deep inside a farm worker.
    """
    if not spec:
        return all_names()
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [name for name in names if name not in FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"known: {', '.join(FACTORIES)}"
        )
    return names


def get_workload(name: str, scale: int = 1) -> Workload:
    try:
        factory = FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(FACTORIES)}"
        ) from None
    return factory(scale=scale)


def all_workloads(scale: int = 1) -> List[Workload]:
    return [factory(scale=scale) for factory in FACTORIES.values()]
