"""124.m88ksim proxy — instruction decode and dispatch.

The simulator's hot loop extracts opcode and register fields from each
instruction word and dispatches through a compare chain skewed toward the
common ALU opcodes, with rare trap/illegal checks that never fire.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int IMEM[2100];
int REGS[32];
int COUNTS[8];

int main(int n) {
    int pc = 0;
    int executed = 0;
    while (pc < n) {
        int w = IMEM[pc];
        int op = (w >> 26) & 63;
        int rd = (w >> 21) & 31;
        int rs1 = (w >> 16) & 31;
        int rs2 = (w >> 11) & 31;
        if (w < 0) { return 0 - 3; }
        if (op > 31) { return 0 - 4; }
        if (rd > 31) { return 0 - 5; }
        if (op == 0) {
            REGS[rd] = REGS[rs1] + REGS[rs2];
        } else { if (op == 1) {
            REGS[rd] = REGS[rs1] - REGS[rs2];
        } else { if (op == 2) {
            REGS[rd] = REGS[rs1] & REGS[rs2];
        } else { if (op == 3) {
            REGS[rd] = REGS[rs1] | REGS[rs2];
        } else { if (op == 4) {
            REGS[rd] = REGS[rs1] + (w & 2047);
        } else {
            COUNTS[op & 7] += 1;
            if (op == 63) { return 0 - 1; }
        } } } } }
        executed += 1;
        pc += 1;
    }
    REGS[0] = 0;
    return executed;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=2222)
    instructions = 2000
    imem = []
    for _ in range(instructions):
        roll = rng.below(100)
        if roll < 40:
            op = 0
        elif roll < 60:
            op = 4
        elif roll < 75:
            op = 1
        elif roll < 85:
            op = 2
        elif roll < 93:
            op = 3
        else:
            op = 5 + rng.below(8)
        word = (op << 26) | (rng.below(32) << 21) | (rng.below(32) << 16) \
            | (rng.below(32) << 11) | rng.below(2048)
        imem.append(word)

    def setup(interp):
        interp.poke_array("IMEM", imem)
        return (instructions,)

    return Workload(
        name="124.m88ksim",
        source=SOURCE,
        inputs=[setup] * max(1, scale),
        description="instruction decode/dispatch skewed to ALU opcodes",
        paper_benchmark="124.m88ksim",
        category="spec95",
    )
