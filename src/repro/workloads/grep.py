"""grep — substring search with an unrolled first-character skip loop.

The hot path tests four text positions per iteration against the pattern's
first character (each test almost never hits), falling into the verify loop
only on a first-character match — the memchr-style scan that gives grep its
2.11x wide-machine speedup in the paper.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[6300];
int PAT[16];

int main(int n) {
    int count = 0;
    int p0 = PAT[0];
    int i = 0;
    int limit = n - 16;
    while (i < limit) {
        if (TEXT[i] == p0) { goto check; }
        if (TEXT[i + 1] == p0) { i += 1; goto check; }
        if (TEXT[i + 2] == p0) { i += 2; goto check; }
        if (TEXT[i + 3] == p0) { i += 3; goto check; }
        i += 4;
        continue;
      check:
        int j = 1;
        while (PAT[j] != 0 && TEXT[i + j] == PAT[j]) {
            j += 1;
        }
        if (PAT[j] == 0) { count += 1; }
        i += 1;
    }
    return count;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=404)
    length = 3600 * scale
    # Pattern uses characters rare in the text.
    pattern = [122, 113, 122, 0]  # "zqz"
    text = []
    for _ in range(length):
        text.append(97 + rng.below(20))  # 'a'..'t': never 'z'/'q'
    # Plant a few matches.
    for position in range(50, length - 10, max(199, length // 12)):
        text[position:position + 3] = pattern[:3]
    text.append(0)

    def setup(interp):
        interp.poke_array("TEXT", text)
        interp.poke_array("PAT", pattern)
        return (len(text) - 1,)

    return Workload(
        name="grep",
        source=SOURCE,
        inputs=[setup],
        description="first-char skip loop + verify loop substring search",
        paper_benchmark="grep",
        category="util",
    )
