"""056.ear proxy — cochlear-model filter bank (fixed point).

ear is dominated by filter arithmetic with very few data-dependent
branches: an unrolled 8-tap inner product per sample plus a rare
saturation clamp. Speedup should come almost entirely on wide machines
(the paper: 1.01 narrow -> 1.52 infinite).
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int X[2300];
int Y[2300];
int H[8];

int main(int n) {
    int i = 0;
    int clipped = 0;
    while (i < n) {
        int acc = H[0] * X[i]
                + H[1] * X[i + 1]
                + H[2] * X[i + 2]
                + H[3] * X[i + 3]
                + H[4] * X[i + 4]
                + H[5] * X[i + 5]
                + H[6] * X[i + 6]
                + H[7] * X[i + 7];
        acc = acc >> 6;
        if (acc > 32767) { acc = 32767; clipped += 1; }
        if (acc < 0 - 32768) { acc = 0 - 32768; clipped += 1; }
        Y[i] = acc;
        i += 1;
    }
    return clipped;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=1717)
    samples = 1400 * scale
    signal = [rng.in_range(-120, 120) for _ in range(samples + 8)]
    taps = [3, -9, 21, 58, 58, 21, -9, 3]

    def setup(interp):
        interp.poke_array("X", signal)
        interp.poke_array("H", taps)
        return (samples,)

    return Workload(
        name="056.ear",
        source=SOURCE,
        inputs=[setup],
        description="8-tap fixed-point filter with rare saturation",
        paper_benchmark="056.ear",
        category="spec92",
    )
