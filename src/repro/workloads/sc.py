"""072.sc proxy — spreadsheet recalculation sweep.

Scans the cell grid skipping empty cells (the common case), evaluating a
small dependent-cell formula for occupied ones, with range and error
checks that almost never fire.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int KIND[2100];
int CELLV[2100];
int DEP[2100];

int main(int n) {
    int evaluated = 0;
    int errors = 0;
    int i = 0;
    while (i < n) {
        int kind = KIND[i];
        if (kind != 0) {
            int dep = DEP[i];
            if (dep < 0 || dep >= n) {
                errors += 1;
            } else {
                int value = CELLV[dep] * 3 + kind;
                if (value > 100000) { value = 100000; }
                CELLV[i] = value;
                evaluated += 1;
            }
        }
        i += 1;
    }
    return evaluated * 10 + errors;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=1818)
    cells = 2000
    sweeps = max(1, scale)
    kinds = [rng.below(4) if rng.below(100) < 25 else 0 for _ in range(cells)]
    values = rng.ints(cells, 0, 99)
    deps = [rng.below(cells) for _ in range(cells)]

    def setup(interp):
        interp.poke_array("KIND", kinds)
        interp.poke_array("CELLV", values)
        interp.poke_array("DEP", deps)
        return (cells,)

    return Workload(
        name="072.sc",
        source=SOURCE,
        inputs=[setup] * sweeps,
        description="spreadsheet sweep skipping empty cells",
        paper_benchmark="072.sc",
        category="spec92",
    )
