"""134.perl proxy — string splitting and small-hash symbol counting.

Scans a byte stream for delimiter-separated fields (delimiters are rare),
hashing each field into a fixed-size symbol table: a blend of biased byte
loops and hash-probe branches like perl's interpreter runtime.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

SOURCE = """
int TEXT[5300];
int HTAB[256];
int STATS[4];

int main(int n) {
    int i = 0;
    int fields = 0;
    int symbols = 0;
    int h = 0;
    while (i < n) {
        int c = TEXT[i];
        if (c == 58 || c == 10) {
            int slot = h & 255;
            if (HTAB[slot] == 0) {
                HTAB[slot] = h + 1;
                symbols += 1;
            } else {
                if (HTAB[slot] != h + 1) { STATS[0] += 1; }
            }
            fields += 1;
            h = 0;
        } else {
            h = h * 33 + c;
            h = h & 65535;
        }
        i += 1;
    }
    STATS[1] = fields;
    return symbols * 100 + fields;
}
"""


def workload(scale: int = 1) -> Workload:
    rng = Lcg(seed=2424)
    length = 2600 * scale
    text = []
    vocabulary = [
        [97 + rng.below(26) for _ in range(rng.in_range(3, 8))]
        for _ in range(40)
    ]
    while len(text) < length:
        text.extend(rng.choice(vocabulary))
        text.append(58 if rng.below(4) else 10)
    text = text[:length]

    def setup(interp):
        interp.poke_array("TEXT", text)
        return (len(text),)

    return Workload(
        name="134.perl",
        source=SOURCE,
        inputs=[setup],
        description="field splitting plus symbol-table hashing",
        paper_benchmark="134.perl",
        category="spec95",
    )
