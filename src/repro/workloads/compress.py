"""026.compress / 129.compress proxies — LZW hash-table probing.

Per input byte: compute a code hash, probe an open-addressed table (first
probe usually resolves), insert or count a hit. Branches are biased toward
the no-collision path; the integer mix includes shifts and masks like the
real compress inner loop.
"""

from __future__ import annotations

from repro.workloads.base import Lcg, Workload

_SOURCE_TEMPLATE = """
int TEXT[4200];
int HKEY[{table}];
int STATS[4];

int main(int n) {{
    int prev = 0;
    int hits = 0;
    int inserts = 0;
    int collisions = 0;
    int i = 0;
    while (i < n) {{
        int c = TEXT[i];
        int code = ((prev << 5) ^ c) + 1;
        int h = code & {mask};
        int probes = 0;
        while (HKEY[h] != 0 && HKEY[h] != code) {{
            h = (h + 17) & {mask};
            collisions += 1;
            probes += 1;
            if (probes > {table}) {{ return 0 - 1; }}
        }}
        if (HKEY[h] == 0) {{
            HKEY[h] = code;
            inserts += 1;
        }} else {{
            hits += 1;
        }}
        prev = c;
        i += 1;
    }}
    STATS[0] = inserts;
    STATS[1] = hits;
    STATS[2] = collisions;
    return hits;
}}
"""


def _build(name: str, seed: int, table: int, length: int, alphabet: int,
           paper: str, category: str) -> Workload:
    rng = Lcg(seed=seed)
    # Skewed byte distribution => repeated digrams => hash hits.
    text = []
    for _ in range(length):
        if rng.below(100) < 60:
            text.append(1 + rng.below(8))
        else:
            text.append(1 + rng.below(alphabet))

    def setup(interp):
        interp.poke_array("TEXT", text)
        return (len(text),)

    source = _SOURCE_TEMPLATE.format(table=table, mask=table - 1)
    return Workload(
        name=name,
        source=source,
        inputs=[setup],
        description="LZW-style open-addressed hash probing",
        paper_benchmark=paper,
        category=category,
    )


def workload(scale: int = 1) -> Workload:
    return _build(
        name="026.compress", seed=1515, table=1024,
        length=2000 * scale, alphabet=40,
        paper="026.compress", category="spec92",
    )


def workload_129(scale: int = 1) -> Workload:
    return _build(
        name="129.compress", seed=1616, table=2048,
        length=2000 * scale, alphabet=64,
        paper="129.compress", category="spec95",
    )
