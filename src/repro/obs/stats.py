"""Counters and gauges: cheap numeric telemetry beside the span tree.

A :class:`CounterSet` accumulates named statistics — each tracks the
number of samples, their sum, and their maximum, which covers both pure
counters (``record_counter("sched.ops_scheduled", n)``) and gauges where
the high-water mark matters (``sched.ready_queue_depth``,
``farm.cache_restore_latency_s``). Like the tracer and the ledger, the
hooks are context-activated no-ops by default, so the list scheduler and
estimator pay one context-variable read per call site when nothing is
listening.

Counter values are folded into the compile-metrics document under the
``repro.farm.metrics/v3`` schema (see :mod:`repro.farm.metrics`).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, List, Optional

_ACTIVE: ContextVar[Optional["CounterSet"]] = ContextVar(
    "repro_obs_counters", default=None
)


@dataclass
class CounterStat:
    """Samples of one named statistic: count, total, and maximum."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def add(self, value: float):
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total, "max": self.max}

    @classmethod
    def from_dict(cls, data: dict) -> "CounterStat":
        return cls(
            count=data.get("count", 0),
            total=data.get("total", 0.0),
            max=data.get("max", 0.0),
        )


class CounterSet:
    """A bag of named counters, mergeable across farm workers."""

    def __init__(self):
        self.counters: Dict[str, CounterStat] = {}

    def add(self, name: str, value: float = 1.0):
        stat = self.counters.get(name)
        if stat is None:
            stat = self.counters[name] = CounterStat()
        stat.add(value)

    def get(self, name: str) -> CounterStat:
        return self.counters.get(name, CounterStat())

    def merge(self, other: "CounterSet") -> "CounterSet":
        merged = CounterSet()
        for source in (self, other):
            for name, stat in source.counters.items():
                into = merged.counters.get(name)
                if into is None:
                    into = merged.counters[name] = CounterStat()
                into.count += stat.count
                into.total += stat.total
                if stat.max > into.max:
                    into.max = stat.max
        return merged

    def to_dict(self) -> dict:
        return {
            name: stat.to_dict()
            for name, stat in sorted(self.counters.items())
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CounterSet":
        counters = cls()
        for name, stat in data.items():
            counters.counters[name] = CounterStat.from_dict(stat)
        return counters

    def format_lines(self) -> List[str]:
        lines = []
        for name, stat in sorted(self.counters.items()):
            lines.append(
                f"{name:<36} count={stat.count}"
                f"  total={stat.total:g}  max={stat.max:g}"
            )
        return lines


# ----------------------------------------------------------------------
# Context plumbing
# ----------------------------------------------------------------------
def current_counters() -> Optional[CounterSet]:
    return _ACTIVE.get()


@contextmanager
def activate_counters(counters: Optional[CounterSet]):
    """Make *counters* the context's counter set (None deactivates)."""
    token = _ACTIVE.set(counters)
    try:
        yield counters
    finally:
        _ACTIVE.reset(token)


def record_counter(name: str, value: float = 1.0):
    """Add a sample to the active counter set; no-op when inactive."""
    counters = _ACTIVE.get()
    if counters is not None:
        counters.add(name, value)
