"""The CPR decision ledger: every accept/reject the optimizer makes.

The paper's ICBM algorithm takes dozens of small, individually invisible
decisions per procedure — which branch seeds a CPR block, which of the
four Match tests stops its growth, which compare operands get promoted
above their guard, which CPR block survives restructuring. The ledger
records each one as a :class:`LedgerEntry` with enough *uid-free* detail
to audit it after the fact: block labels, exit-branch indices, dynamic
branch counts, schedule lengths. Being uid-free is load-bearing twice
over — cache restores re-mint every uid (``adopt_procedure``), and the
farm's determinism contract demands bit-identical reports cold vs. warm
and across ``--jobs`` values, so nothing process-local may leak in.

Rollback safety: the transactional pass manager brackets each rung with
:meth:`DecisionLedger.mark` and, when the rung is rolled back, discards
the entries it wrote with :meth:`DecisionLedger.rewind` — the ledger only
ever describes transforms that actually survived. Committed entries are
carried in the transaction cache and :meth:`replay`\\ ed on restore, so a
warm build's ledger matches the cold build's exactly.

Entry kinds currently emitted:

========================  =====================================================
``match-seed``            a branch was rejected as a CPR seed (why)
``match-reject``          growth past a branch stopped (which test failed)
``match-accept``          a CPR block was accepted (branch count, est. height)
``speculate-promote``     a compare input op was promoted above its guard
``speculate-demote``      a promoted op was demoted back (liveness reason)
``cpr-transform``         a CPR block was restructured (branch/schedule deltas)
``estimator-clamp``       the exit-aware estimator clamped an over-taken count
``worker-spawn``          the farm supervisor started a worker (pid)
``worker-kill``           the supervisor killed a worker (deadline/heartbeat)
``worker-crash``          a worker died on its own (exit code / closed pipe)
``task-retry``            a workload was requeued onto a surviving worker
``task-quarantine``       the crash-loop circuit breaker gave up on a workload
``journal-replay``        completed outcomes were replayed from the journal
``shed-transition``       the serve daemon moved along its overload ladder
``serve-nack``            the serve daemon explicitly NACKed a request
``serve-recover``         the serve daemon resolved journalled requests at boot
========================  =====================================================

The supervision kinds live in a separate per-run ledger
(:attr:`repro.farm.farm.FarmResult.supervision`), not in any build's
report: they describe the run that happened, not the program that was
built, so they are deliberately outside the determinism contract. The
serve kinds live in the daemon's own ledger (:mod:`repro.serve.server`)
for the same reason: admission and shedding describe traffic, not
programs.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Entry kinds, in display order for summaries.
ENTRY_KINDS = (
    "match-seed",
    "match-reject",
    "match-accept",
    "speculate-promote",
    "speculate-demote",
    "cpr-transform",
    "estimator-clamp",
    # Farm supervision events (FarmResult.supervision, never in builds).
    "worker-spawn",
    "worker-kill",
    "worker-crash",
    "task-retry",
    "task-quarantine",
    "journal-replay",
    # Storage-integrity events (supervision/server ledgers, never in
    # builds): detected journal corruption, cache quarantines/degrades.
    "journal-corrupt",
    "storage-incident",
    # Serve-daemon events (the server's own ledger, never in builds).
    "shed-transition",
    "serve-nack",
    "serve-recover",
)

_ACTIVE: ContextVar[Optional["DecisionLedger"]] = ContextVar(
    "repro_obs_ledger", default=None
)


@dataclass(frozen=True)
class LedgerEntry:
    """One optimizer decision. Immutable, uid-free, JSON-serializable."""

    kind: str
    proc: str
    block: str
    attrs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, kind: str, proc: str, block: str, **attrs) -> "LedgerEntry":
        return cls(
            kind=kind,
            proc=proc,
            block=block,
            attrs=tuple(sorted(attrs.items())),
        )

    def get(self, key: str, default=None):
        for name, value in self.attrs:
            if name == key:
                return value
        return default

    @property
    def signature(self) -> str:
        """A stable, uid-free content hash (sanitizer-finding idiom)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "proc": self.proc,
            "block": self.block,
            "attrs": {name: value for name, value in self.attrs},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerEntry":
        return cls.make(
            data["kind"], data["proc"], data["block"], **data.get("attrs", {})
        )

    def render(self) -> str:
        detail = "  ".join(f"{k}={v}" for k, v in self.attrs)
        return f"{self.kind:<18} {self.proc}/{self.block}  {detail}".rstrip()


class DecisionLedger:
    """An append-only log of optimizer decisions, with rung rollback."""

    def __init__(self):
        self.entries: List[LedgerEntry] = []
        self._unique: set = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, proc: str, block: str, **attrs) -> LedgerEntry:
        entry = LedgerEntry.make(kind, proc, block, **attrs)
        self.entries.append(entry)
        return entry

    def record_unique(
        self, kind: str, proc: str, block: str, **attrs
    ) -> Optional[LedgerEntry]:
        """Record, unless an identical entry is already present.

        The estimator runs once per processor configuration; a clamp on a
        stale profile would otherwise be reported five times over.
        """
        entry = LedgerEntry.make(kind, proc, block, **attrs)
        if entry in self._unique:
            return None
        self._unique.add(entry)
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Transaction support (rollback + cache replay)
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """Checkpoint before a rung; pass to rewind()/entries_since()."""
        return len(self.entries)

    def rewind(self, mark: int):
        """Discard entries recorded since *mark* (the rung rolled back)."""
        dropped = self.entries[mark:]
        del self.entries[mark:]
        self._unique.difference_update(dropped)

    def entries_since(self, mark: int) -> List[LedgerEntry]:
        return list(self.entries[mark:])

    def replay(self, entries: Iterable[LedgerEntry]):
        """Re-append cached entries (cache hit restoring a transaction)."""
        for entry in entries:
            self.entries.append(entry)

    def drop(self, predicate) -> int:
        """Remove entries matching *predicate*; returns how many.

        Used by the pipeline's untransformed-block restore: a speculation
        entry on a block that was put back to its pre-FRP form describes
        an edit that no longer exists in the shipped program.
        """
        dropped = [entry for entry in self.entries if predicate(entry)]
        if dropped:
            self.entries = [
                entry for entry in self.entries if not predicate(entry)
            ]
            self._unique.difference_update(dropped)
        return len(dropped)

    # ------------------------------------------------------------------
    # Queries / serialization
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[LedgerEntry]:
        return [entry for entry in self.entries if entry.kind == kind]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def merge(self, other: "DecisionLedger") -> "DecisionLedger":
        merged = DecisionLedger()
        merged.entries = self.entries + other.entries
        return merged

    def to_dict(self) -> dict:
        return {"entries": [entry.to_dict() for entry in self.entries]}

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionLedger":
        ledger = cls()
        ledger.entries = [
            LedgerEntry.from_dict(entry) for entry in data.get("entries", [])
        ]
        return ledger

    def summary(self) -> str:
        counts = self.counts()
        lines = [
            f"{kind:<18} {counts[kind]}"
            for kind in ENTRY_KINDS
            if kind in counts
        ]
        for kind in sorted(set(counts) - set(ENTRY_KINDS)):
            lines.append(f"{kind:<18} {counts[kind]}")
        return "\n".join(lines) if lines else "(empty ledger)"


# ----------------------------------------------------------------------
# Context plumbing
# ----------------------------------------------------------------------
def current_ledger() -> Optional[DecisionLedger]:
    return _ACTIVE.get()


@contextmanager
def activate_ledger(ledger: Optional[DecisionLedger]):
    """Make *ledger* the context's ledger (None deactivates recording)."""
    token = _ACTIVE.set(ledger)
    try:
        yield ledger
    finally:
        _ACTIVE.reset(token)


def ledger_record(kind: str, proc: str, block: str, **attrs):
    """Record into the active ledger; a silent no-op when none is active."""
    ledger = _ACTIVE.get()
    if ledger is None:
        return None
    return ledger.record(kind, proc, block, **attrs)


def ledger_record_unique(kind: str, proc: str, block: str, **attrs):
    """record_unique() into the active ledger; no-op when inactive."""
    ledger = _ACTIVE.get()
    if ledger is None:
        return None
    return ledger.record_unique(kind, proc, block, **attrs)
