"""Always-available, zero-dependency pipeline observability.

Three cooperating layers, each context-activated and free when off:

* :mod:`repro.obs.tracer` — hierarchical span tracing (workload →
  stage → pass → procedure → phase) with Chrome ``trace_event`` export;
* :mod:`repro.obs.ledger` — the CPR decision ledger recording every
  Match accept/reject, speculation promote/demote, and restructure,
  uid-free so it survives cache adoption and farm fan-out bit-identically;
* :mod:`repro.obs.stats` — counters/gauges for the list scheduler,
  estimator, and farm, folded into ``repro.farm.metrics/v3``.
"""

from repro.obs.ledger import (
    DecisionLedger,
    LedgerEntry,
    activate_ledger,
    current_ledger,
    ledger_record,
    ledger_record_unique,
)
from repro.obs.stats import (
    CounterSet,
    CounterStat,
    activate_counters,
    current_counters,
    record_counter,
)
from repro.obs.tracer import (
    CHROME_EVENT_FIELDS,
    NULL_SPAN,
    TRACE_SCHEMA,
    Span,
    Tracer,
    activate_tracer,
    chrome_trace_document,
    current_tracer,
    trace_span,
)

__all__ = [
    "CHROME_EVENT_FIELDS",
    "CounterSet",
    "CounterStat",
    "DecisionLedger",
    "LedgerEntry",
    "NULL_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "activate_counters",
    "activate_ledger",
    "activate_tracer",
    "chrome_trace_document",
    "current_counters",
    "current_ledger",
    "current_tracer",
    "ledger_record",
    "ledger_record_unique",
    "record_counter",
    "trace_span",
]
