"""Hierarchical span tracing: where build wall-clock goes, structurally.

A :class:`Tracer` records a tree of :class:`Span`\\ s — workload → stage →
pass → procedure → phase — each with wall time and free-form attributes
(op counts before/after, cache hit/miss attribution, transaction actions).
Tracing is *opt-in and zero-dependency*: instrumentation sites call
:func:`trace_span`, which returns a shared no-op span unless a tracer has
been activated for the current context, so an untraced build pays one
context-variable read per site and nothing else.

Two export forms:

* :meth:`Tracer.summary` — an indented terminal tree with durations and
  the load-bearing attributes, for ``repro trace``;
* :func:`chrome_trace_document` — Chrome ``trace_event`` JSON (complete
  ``"X"`` events plus ``"M"`` process-name metadata), loadable in
  ``chrome://tracing`` / Perfetto. Span names are uid-free by
  construction (pass names, procedure names, block labels), so traces of
  the same build are structurally identical across processes and runs.

The span tree is JSON-serializable (:meth:`Tracer.to_dict` /
:meth:`Tracer.from_dict`) so farm workers can ship traces back to the
driver across process boundaries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: The stable Chrome trace_event field set for complete ("X") events.
CHROME_EVENT_FIELDS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")

#: Schema tag for the ``repro trace --json`` document.
TRACE_SCHEMA = "repro.obs.trace/v1"

_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar(
    "repro_obs_tracer", default=None
)


@dataclass
class Span:
    """One traced region: a name, a kind, wall time, and attributes."""

    name: str
    kind: str = "phase"
    start_s: float = 0.0  # relative to the tracer's epoch
    duration_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def set_attr(self, key: str, value):
        self.attrs[key] = value

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            kind=data.get("kind", "phase"),
            start_s=data.get("start_s", 0.0),
            duration_s=data.get("duration_s", 0.0),
            attrs=dict(data.get("attrs", {})),
            children=[
                cls.from_dict(child) for child in data.get("children", [])
            ],
        )


class _NullSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value):
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens one span on the tracer's stack."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.tracer._push(self.span)
        return self.span

    def __exit__(self, *exc) -> bool:
        self.tracer._pop(self.span)
        return False


class Tracer:
    """Collects one build's span tree (and optionally its counters)."""

    def __init__(self):
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: Optional :class:`repro.obs.stats.CounterSet` attached by the
        #: driver so the terminal summary can show counters alongside spans.
        self.counters = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "phase", **attrs) -> _SpanContext:
        span = Span(
            name=name,
            kind=kind,
            start_s=time.perf_counter() - self.epoch,
            attrs=dict(attrs),
        )
        return _SpanContext(self, span)

    def _push(self, span: Span):
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span):
        span.duration_s = (time.perf_counter() - self.epoch) - span.start_s
        # Tolerate exceptions unwinding through enclosing spans: pop up to
        # and including *span* so the stack never leaks closed spans.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "spans": [root.to_dict() for root in self.roots],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Tracer":
        tracer = cls()
        tracer.roots = [
            Span.from_dict(span) for span in data.get("spans", [])
        ]
        return tracer

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_events(self, pid: int = 1, tid: int = 1) -> List[dict]:
        """Complete ("X") trace_event records, one per span."""
        events = []
        for span in self.walk():
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": pid,
                    "tid": tid,
                    "args": dict(span.attrs),
                }
            )
        return events

    def summary(self) -> str:
        """The indented terminal tree with durations and key attributes."""
        lines: List[str] = []
        for root in self.roots:
            _summarize_span(root, 0, lines)
        if self.counters is not None and getattr(
            self.counters, "counters", None
        ):
            lines.append("counters:")
            lines.extend("  " + line for line in self.counters.format_lines())
        return "\n".join(lines)


def _summarize_span(span: Span, depth: int, lines: List[str]):
    label = "  " * depth + span.name
    notes = [f"{span.duration_s * 1e3:.1f}ms"]
    attrs = span.attrs
    if "ops_before" in attrs and "ops_after" in attrs:
        notes.append(f"ops {attrs['ops_before']}->{attrs['ops_after']}")
    elif "ops_begin" in attrs and "ops_end" in attrs:
        notes.append(f"ops {attrs['ops_begin']}->{attrs['ops_end']}")
    if attrs.get("cache") is not None:
        notes.append(f"cache={attrs['cache']}")
    if attrs.get("action"):
        notes.append(str(attrs["action"]))
    lines.append(f"{label:<46} {'  '.join(notes)}")
    for child in span.children:
        _summarize_span(child, depth + 1, lines)


# ----------------------------------------------------------------------
# Context plumbing
# ----------------------------------------------------------------------
def current_tracer() -> Optional[Tracer]:
    return _ACTIVE.get()


@contextmanager
def activate_tracer(tracer: Optional[Tracer]):
    """Make *tracer* the context's tracer (None deactivates tracing)."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def trace_span(name: str, kind: str = "phase", **attrs):
    """Open a span on the active tracer, or a shared no-op when untraced."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, kind, **attrs)


def chrome_trace_document(traces: Dict[str, dict]) -> dict:
    """Merge per-workload trace dicts into one Chrome trace JSON document.

    Each workload gets its own pid (with a process-name metadata record),
    so a farm run renders as parallel process tracks. Workload clocks are
    independent (each tracer's epoch is its own creation time), which is
    exactly what a fan-out build looks like.
    """
    events: List[dict] = []
    for pid, name in enumerate(sorted(traces), start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        events.extend(Tracer.from_dict(traces[name]).chrome_events(pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
