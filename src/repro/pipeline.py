"""End-to-end compilation pipelines (the experimental methodology).

The paper compares two builds of each benchmark:

* **baseline** — classically optimized superblock code (IMPACT-style):
  profile, form superblocks with tail duplication, clean up;
* **height-reduced** — the baseline with FRP conversion and the ICBM
  control CPR schema applied.

:func:`build_baseline` and :func:`apply_control_cpr` implement those two
stages; :func:`build_workload` runs both and differentially verifies that
every build computes the same store trace and return value on every input.
Cycle estimation and operation counting live in :mod:`repro.perf`.

Every optimization pass runs through the transactional
:class:`~repro.passes.manager.PassManager` (``options.resilient``, the
default): a pass that fails on one procedure is rolled back to its pre-pass
snapshot and recorded as a structured incident while the rest of the build
proceeds — mirroring the paper's own fallback to unoptimized code wherever
control CPR is not applied. ICBM additionally retries through a degradation
ladder (full config → conservative blocking → per-hyperblock isolation →
baseline restore), so a match/speculation bug degrades performance, never
correctness. ``options.resilient=False`` restores the historical strict
behaviour in which the first failure aborts the build.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.core.config import CPRConfig, DEFAULT_CONFIG
from repro.core.icbm import (
    ICBMReport,
    apply_icbm,
    apply_icbm_isolated,
)
from repro.errors import ReproError, SanitizerError
from repro.ir.procedure import Program
from repro.ir.verify import verify_program
from repro.obs import trace_span
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code, remove_unreachable_blocks
from repro.opt.frp import frp_convert_procedure
from repro.opt.ifconvert import IfConvertConfig, if_convert_procedure
from repro.opt.meld import MeldConfig, MeldReport, meld_procedure
from repro.opt.rename import rename_procedure_registers
from repro.opt.superblock import SuperblockConfig, form_superblocks
from repro.passes.incidents import (
    ACTION_FLAGGED,
    ACTION_RESTORED_BASELINE,
    BuildReport,
    Incident,
)
from repro.passes.manager import (
    PassManager,
    Rung,
    TransactionPolicy,
    check_equivalent,
    run_inputs,
)
from repro.sim.interpreter import DEFAULT_FUEL
from repro.sim.profiler import ProfileData, profile_program


@dataclass
class PipelineOptions:
    """Knobs for the full build pipeline.

    ``if_convert`` enables traditional if-conversion of unbiased diamonds
    before superblock formation — the paper's future-work suggestion,
    disabled by default to match its experimental setup.

    ``resilient`` selects transactional per-procedure rollback (the
    default); when False, the first pass failure aborts the build with the
    original exception. ``fault_plan`` threads a
    :class:`~repro.robustness.faultinject.FaultPlan` into every pass
    transaction for robustness testing; arming one also enables the
    per-transaction differential check for ICBM so silent IR corruption is
    caught and rolled back per procedure. ``transaction`` carries the
    per-transaction verification/budget policy.

    ``sanitize`` arms the semantic sanitizer battery
    (:mod:`repro.sanitize`) inside every pass transaction: ``"fast"`` runs
    the IR-only checks (def-before-use, CPR invariants, exit ordering,
    on-trace growth), ``"full"`` additionally checks profile flow
    conservation after each profiling sweep and schedule legality on the
    final programs. Findings roll the transaction back like any other pass
    failure and, when ``repro_dir`` is set, the failing procedure is
    delta-debugged down to a minimal repro bundle there.
    """

    superblock: SuperblockConfig = field(default_factory=SuperblockConfig)
    cpr: CPRConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    if_convert: bool = False
    if_convert_config: Optional[IfConvertConfig] = None
    meld_config: Optional[MeldConfig] = None
    verify_equivalence: bool = True
    fuel: int = DEFAULT_FUEL
    resilient: bool = True
    fault_plan: Optional[object] = None
    transaction: TransactionPolicy = field(default_factory=TransactionPolicy)
    sanitize: Optional[str] = None
    repro_dir: Optional[str] = None


@dataclass
class WorkloadBuild:
    """Both builds of one workload plus their profiles.

    ``backend`` names the branch-elimination backend that produced the
    transformed program: ``"cpr"`` (full control CPR, the default),
    ``"icbm"`` (the conservative rung-by-rung ICBM configuration), or
    ``"meld"`` (the rival branch-melding pass). ``meld_report`` is only
    populated for the meld backend.
    """

    name: str
    baseline: Program
    baseline_profile: ProfileData
    transformed: Program
    transformed_profile: ProfileData
    icbm_report: ICBMReport
    build_report: BuildReport = field(default_factory=BuildReport)
    backend: str = "cpr"
    meld_report: Optional[MeldReport] = None


def _run_all(program: Program, inputs, entry: str, fuel: int):
    """Execute *program* on each input; return the observable results."""
    return run_inputs(program, inputs, entry, fuel)


def _program_ops(program: Program) -> int:
    return sum(proc.op_count() for proc in program.procedures.values())


def _check_equivalent(reference: List, rebuilt: List, stage: str):
    """Raise TransformError naming the first divergent store, if any."""
    check_equivalent(reference, rebuilt, stage)


def _make_manager(
    program: Program,
    options: PipelineOptions,
    report: BuildReport,
    inputs,
    entry: str,
    reference,
    cache=None,
    metrics=None,
    context_key=None,
) -> PassManager:
    return PassManager(
        program,
        report=report,
        resilient=options.resilient,
        policy=options.transaction,
        fault_plan=options.fault_plan,
        inputs=inputs,
        entry=entry,
        reference=reference,
        fuel=options.fuel,
        cache=cache,
        metrics=metrics,
        context_key=context_key,
        sanitize=options.sanitize,
        repro_dir=options.repro_dir,
    )


def _context_key(program: Program, options: PipelineOptions, inputs_key):
    """The per-build transaction-cache salt; None disables memoization.

    The salt pins everything a pass transaction's outcome may depend on
    beyond the procedure's own IR: the whole original program (profiles
    see cross-procedure execution), the pass configuration, and the
    deterministic input recipe. Without an ``inputs_key`` the profile
    provenance is unknown, so caching stays off.
    """
    if inputs_key is None:
        return None
    from repro.farm.fingerprint import transaction_context

    return transaction_context(program, options, inputs_key)


def _stage_fallback(
    report: BuildReport, stage: str, exc: ReproError
) -> Incident:
    """Record the stage-level catch-all incident (ship unoptimized code)."""
    return report.record(
        Incident(
            pass_name=stage,
            proc_name="*",
            severity="error",
            error_type=type(exc).__name__,
            message=str(exc),
            action=ACTION_RESTORED_BASELINE,
        )
    )


def _record_sanitizer_findings(
    options: PipelineOptions,
    report: BuildReport,
    stage: str,
    findings,
):
    """Turn stage-level sanitizer findings into an incident (or raise)."""
    if not findings:
        return
    from repro.sanitize.battery import format_findings

    exc = SanitizerError(format_findings(findings), findings)
    if not options.resilient:
        raise exc
    report.record(
        Incident(
            pass_name=stage,
            proc_name=findings[0].proc if findings else "*",
            severity="error",
            error_type="SanitizerError",
            message=str(exc),
            action=ACTION_FLAGGED,
        )
    )


def _sanitize_profile(
    program: Program,
    profile: ProfileData,
    options: PipelineOptions,
    report: BuildReport,
    stage: str,
):
    """Full-tier check: profile counts must conserve control flow."""
    if options.sanitize != "full":
        return
    from repro.sanitize.profilecheck import profile_findings

    _record_sanitizer_findings(
        options, report, stage, profile_findings(program, profile)
    )


def _sanitize_schedule(
    program: Program,
    options: PipelineOptions,
    report: BuildReport,
    stage: str,
):
    """Full-tier check: final programs must schedule legally (MEDIUM)."""
    if options.sanitize != "full":
        return
    from repro.machine.processor import MEDIUM
    from repro.sanitize.schedcheck import schedule_findings

    _record_sanitizer_findings(
        options, report, stage, schedule_findings(program, MEDIUM)
    )


def _dce_pass(proc) -> int:
    removed = eliminate_dead_code(proc)
    removed += remove_unreachable_blocks(proc)
    return removed


def build_baseline(
    program: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
    report: Optional[BuildReport] = None,
    cache=None,
    metrics=None,
    inputs_key: Optional[str] = None,
) -> Tuple[Program, ProfileData]:
    """Produce the classically optimized superblock baseline."""
    options = options or PipelineOptions()
    report = report if report is not None else BuildReport()
    ledger_mark = report.ledger.mark()
    reference = None
    if options.verify_equivalence:
        with trace_span("reference-run"):
            reference = _run_all(program, inputs, entry, options.fuel)

    baseline = program.clone()
    with trace_span("profile:seed"):
        seed_profile = profile_program(
            baseline, inputs=inputs, entry=entry, fuel=options.fuel
        )
    manager = _make_manager(
        baseline, options, report, inputs, entry, reference,
        cache=cache, metrics=metrics,
        context_key=_context_key(program, options, inputs_key),
    )
    manager.bundle_profile = seed_profile
    _sanitize_profile(baseline, seed_profile, options, report, "profile-seed")
    if options.if_convert:
        manager.run_pass(
            "if-convert",
            lambda proc: if_convert_procedure(
                proc, seed_profile, options.if_convert_config
            ),
        )
        if manager.cache_restores:
            # Cache-restored procedures carry fresh op uids, so the
            # uid-keyed branch statistics of the pre-pass profile no
            # longer apply; re-profile before the profile-guided pass.
            seed_profile = profile_program(
                baseline, inputs=inputs, entry=entry, fuel=options.fuel
            )
            manager.bundle_profile = seed_profile
    manager.run_pass(
        "superblock",
        lambda proc: form_superblocks(proc, seed_profile, options.superblock),
    )
    manager.run_pass("rename", rename_procedure_registers)
    manager.run_pass("copyprop", propagate_copies)
    manager.run_pass("dce", _dce_pass)
    verify_program(baseline)

    if options.verify_equivalence:
        try:
            with trace_span("equivalence-check"):
                rebuilt = _run_all(baseline, inputs, entry, options.fuel)
                _check_equivalent(reference, rebuilt, "superblock formation")
        except ReproError as exc:
            if not options.resilient:
                raise
            # Stage-level catch-all: a pass corrupted semantics without
            # structural damage. Ship the unoptimized program instead.
            _stage_fallback(report, "baseline-stage", exc)
            report.ledger.rewind(ledger_mark)
            with trace_span("stage-fallback") as span:
                ops_dropped = _program_ops(baseline)
                baseline = program.clone()
                span.set_attr(
                    "ops_delta", _program_ops(baseline) - ops_dropped
                )

    with trace_span("profile:baseline"):
        profile = profile_program(
            baseline, inputs=inputs, entry=entry, fuel=options.fuel
        )
    _sanitize_profile(
        baseline, profile, options, report, "profile-baseline"
    )
    return baseline, profile


def _conservative_config(config: CPRConfig) -> CPRConfig:
    """The degradation ladder's defensive ICBM configuration."""
    return replace(
        config,
        max_branches=2,
        enable_taken_variation=False,
        enable_speculation=False,
        enable_demotion=False,
    )


def apply_control_cpr(
    baseline: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
    report: Optional[BuildReport] = None,
    cache=None,
    metrics=None,
    inputs_key: Optional[str] = None,
) -> Tuple[Program, ProfileData, ICBMReport]:
    """FRP-convert the baseline and apply ICBM."""
    options = options or PipelineOptions()
    report = report if report is not None else BuildReport()
    ledger_mark = report.ledger.mark()
    reference = None
    if options.verify_equivalence:
        with trace_span("reference-run"):
            reference = _run_all(baseline, inputs, entry, options.fuel)

    transformed = baseline.clone()
    # Snapshot every block so hyperblocks where ICBM ends up not firing can
    # be restored: the paper measures the *unoptimized* code wherever
    # control CPR is not applied (FRP conversion alone only adds
    # dependences).
    snapshots = {}
    for proc in transformed.procedures.values():
        for block in proc.blocks:
            snapshots[(proc.name, block.label)] = (
                [op.clone() for op in block.ops],
                block.fallthrough,
            )
    manager = _make_manager(
        transformed, options, report, inputs, entry, reference,
        cache=cache, metrics=metrics,
        context_key=_context_key(baseline, options, inputs_key),
    )
    frp_committed = manager.run_pass("frp", frp_convert_procedure)
    verify_program(transformed)
    # Profile the FRP-converted build: match's heuristics key on the branch
    # operations of exactly this program.
    with trace_span("profile:frp"):
        frp_profile = profile_program(
            transformed, inputs=inputs, entry=entry, fuel=options.fuel
        )
    manager.bundle_profile = frp_profile
    _sanitize_profile(
        transformed, frp_profile, options, report, "profile-frp"
    )
    conservative = _conservative_config(options.cpr)
    ladder = [
        Rung(
            "full",
            lambda proc: apply_icbm(proc, frp_profile, options.cpr),
        ),
        Rung(
            "conservative",
            lambda proc: apply_icbm(proc, frp_profile, conservative),
        ),
        Rung(
            "isolate-hyperblocks",
            lambda proc: apply_icbm_isolated(
                proc, frp_profile, conservative, program=transformed
            ),
        ),
    ]
    # The per-transaction differential check localizes silent semantic
    # corruption (not just structural damage) to one procedure; it costs one
    # interpreter sweep per procedure, so it is armed only for robustness
    # runs (a fault plan present) or by explicit policy. The stage-level
    # check below still guards every default build.
    icbm_differential = options.verify_equivalence and (
        options.fault_plan is not None or options.transaction.differential
    )
    icbm_results = manager.run_pass(
        "icbm",
        ladder=ladder,
        procs=[
            name for name in transformed.procedures if name in frp_committed
        ],
        differential=icbm_differential,
    )
    combined = ICBMReport()
    for partial in icbm_results.values():
        combined.blocks.extend(partial.blocks)
        combined.dce_removed += partial.dce_removed
        combined.skipped_blocks.extend(partial.skipped_blocks)

    transformed_labels = {
        (b.proc_name, b.label) for b in combined.blocks if b.transformed > 0
    }
    with trace_span("restore-untransformed") as restore_span:
        ops_at_restore = _program_ops(transformed)
        restored = set()
        for proc in transformed.procedures.values():
            for block in proc.blocks:
                key = (proc.name, block.label)
                if key not in snapshots:
                    continue  # new (compensation) block
                if (proc.name, block.label.name) in transformed_labels:
                    continue
                ops, fallthrough = snapshots[key]
                block.ops = [op.clone() for op in ops]
                block.fallthrough = fallthrough
                restored.add((proc.name, block.label.name))
        restore_span.set_attr(
            "ops_delta", _program_ops(transformed) - ops_at_restore
        )
    # Speculation entries on restored blocks describe guard edits that the
    # restore just undid; the ledger must only describe the shipped IR.
    report.ledger.drop(
        lambda entry: entry.kind in ("speculate-promote", "speculate-demote")
        and (entry.proc, entry.block) in restored
    )
    verify_program(transformed)

    if options.verify_equivalence:
        try:
            with trace_span("equivalence-check"):
                rebuilt = _run_all(transformed, inputs, entry, options.fuel)
                _check_equivalent(reference, rebuilt, "control CPR")
        except ReproError as exc:
            if not options.resilient:
                raise
            # Stage-level catch-all: ship the baseline unchanged.
            _stage_fallback(report, "cpr-stage", exc)
            report.ledger.rewind(ledger_mark)
            with trace_span("stage-fallback") as span:
                ops_dropped = _program_ops(transformed)
                transformed = baseline.clone()
                combined = ICBMReport()
                span.set_attr(
                    "ops_delta", _program_ops(transformed) - ops_dropped
                )

    with trace_span("profile:cpr"):
        final_profile = profile_program(
            transformed, inputs=inputs, entry=entry, fuel=options.fuel
        )
    _sanitize_profile(
        transformed, final_profile, options, report, "profile-cpr"
    )
    return transformed, final_profile, combined


def apply_meld(
    baseline: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
    report: Optional[BuildReport] = None,
    cache=None,
    metrics=None,
    inputs_key: Optional[str] = None,
) -> Tuple[Program, ProfileData, MeldReport]:
    """Apply the rival branch-melding backend to the baseline.

    The meld pass (:mod:`repro.opt.meld`) eliminates two-sided diamonds
    by merging the rival arms' corresponding operations under predicate
    selects, cost-gated by the list scheduler. Like control CPR it runs
    through the transactional pass manager and the stage-level
    equivalence check, so a melding bug degrades to the baseline rather
    than shipping a miscompile.
    """
    options = options or PipelineOptions()
    report = report if report is not None else BuildReport()
    ledger_mark = report.ledger.mark()
    reference = None
    if options.verify_equivalence:
        with trace_span("reference-run"):
            reference = _run_all(baseline, inputs, entry, options.fuel)

    transformed = baseline.clone()
    with trace_span("profile:meld-seed"):
        seed_profile = profile_program(
            transformed, inputs=inputs, entry=entry, fuel=options.fuel
        )
    manager = _make_manager(
        transformed, options, report, inputs, entry, reference,
        cache=cache, metrics=metrics,
        context_key=_context_key(baseline, options, inputs_key),
    )
    manager.bundle_profile = seed_profile
    _sanitize_profile(
        transformed, seed_profile, options, report, "profile-meld-seed"
    )
    meld_config = options.meld_config or MeldConfig()
    meld_results = manager.run_pass(
        "meld",
        lambda proc: meld_procedure(proc, seed_profile, meld_config),
    )
    manager.run_pass("meld-dce", _dce_pass)
    verify_program(transformed)
    combined = MeldReport()
    for partial in meld_results.values():
        if not isinstance(partial, MeldReport):
            continue  # rolled-back procedure
        combined.melded_diamonds += partial.melded_diamonds
        combined.melded_pairs += partial.melded_pairs
        combined.select_movs += partial.select_movs
        combined.predicated_ops += partial.predicated_ops
        combined.removed_branches += partial.removed_branches
        combined.rejected_cost += partial.rejected_cost

    if options.verify_equivalence:
        try:
            with trace_span("equivalence-check"):
                rebuilt = _run_all(transformed, inputs, entry, options.fuel)
                _check_equivalent(reference, rebuilt, "branch melding")
        except ReproError as exc:
            if not options.resilient:
                raise
            # Stage-level catch-all: ship the baseline unchanged.
            _stage_fallback(report, "meld-stage", exc)
            report.ledger.rewind(ledger_mark)
            with trace_span("stage-fallback") as span:
                ops_dropped = _program_ops(transformed)
                transformed = baseline.clone()
                combined = MeldReport()
                span.set_attr(
                    "ops_delta", _program_ops(transformed) - ops_dropped
                )

    with trace_span("profile:meld"):
        final_profile = profile_program(
            transformed, inputs=inputs, entry=entry, fuel=options.fuel
        )
    _sanitize_profile(
        transformed, final_profile, options, report, "profile-meld"
    )
    return transformed, final_profile, combined


#: The branch-elimination backends a baseline can be pushed through:
#: ``cpr`` is the paper's full control CPR schema, ``icbm`` the
#: conservative rung-by-rung ICBM configuration (max two branches per
#: CPR block, no taken variation, no speculation), and ``meld`` the
#: rival diamond-melding pass.
BACKENDS = ("icbm", "cpr", "meld")


def backend_options(
    options: Optional[PipelineOptions], backend: str
) -> PipelineOptions:
    """The pipeline options the named backend actually builds under."""
    options = options or PipelineOptions()
    if backend == "cpr":
        return options
    if backend == "icbm":
        return replace(options, cpr=_conservative_config(options.cpr))
    if backend == "meld":
        return options
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
    )


def apply_backend(
    backend: str,
    baseline: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
    report: Optional[BuildReport] = None,
    cache=None,
    metrics=None,
    inputs_key: Optional[str] = None,
):
    """Transform *baseline* under one backend.

    Returns ``(transformed, profile, icbm_report, meld_report)`` where
    exactly one of the two reports is meaningful for the chosen backend
    (the other is an empty default).
    """
    options = backend_options(options, backend)
    if backend == "meld":
        transformed, profile, meld_report = apply_meld(
            baseline, inputs, options, entry, report=report,
            cache=cache, metrics=metrics, inputs_key=inputs_key,
        )
        return transformed, profile, ICBMReport(), meld_report
    transformed, profile, icbm_report = apply_control_cpr(
        baseline, inputs, options, entry, report=report,
        cache=cache, metrics=metrics, inputs_key=inputs_key,
    )
    return transformed, profile, icbm_report, None


def build_workload(
    name: str,
    program: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
    cache=None,
    metrics=None,
    inputs_key: Optional[str] = None,
    backend: str = "cpr",
) -> WorkloadBuild:
    """Run the full two-build methodology for one workload.

    ``cache`` (a :class:`repro.farm.cache.PassCache`) plus ``inputs_key``
    (see :func:`repro.farm.fingerprint.workload_inputs_key`) enable
    content-addressed memoization of every pass transaction; ``metrics``
    (a :class:`repro.farm.metrics.CompileMetrics`) collects per-pass wall
    time and cache counters. ``backend`` selects the branch-elimination
    backend for the transformed build (one of :data:`BACKENDS`).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"expected one of {', '.join(BACKENDS)}"
        )
    options = options or PipelineOptions()
    report = BuildReport()
    with trace_span(f"workload:{name}", kind="workload"):
        with trace_span("stage:baseline", kind="stage") as stage:
            stage.set_attr("ops_begin", _program_ops(program))
            baseline, baseline_profile = build_baseline(
                program, inputs, options, entry, report=report,
                cache=cache, metrics=metrics, inputs_key=inputs_key,
            )
            stage.set_attr("ops_end", _program_ops(baseline))
        with trace_span(f"stage:{backend}", kind="stage") as stage:
            stage.set_attr("ops_begin", _program_ops(baseline))
            transformed, transformed_profile, icbm_report, meld_report = (
                apply_backend(
                    backend, baseline, inputs, options, entry,
                    report=report, cache=cache, metrics=metrics,
                    inputs_key=inputs_key,
                )
            )
            stage.set_attr("ops_end", _program_ops(transformed))
        with trace_span("sanitize:schedule"):
            _sanitize_schedule(baseline, options, report, "schedule-baseline")
            _sanitize_schedule(
                transformed, options, report, f"schedule-{backend}"
            )
    return WorkloadBuild(
        name=name,
        baseline=baseline,
        baseline_profile=baseline_profile,
        transformed=transformed,
        transformed_profile=transformed_profile,
        icbm_report=icbm_report,
        build_report=report,
        backend=backend,
        meld_report=meld_report,
    )
