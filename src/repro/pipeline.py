"""End-to-end compilation pipelines (the experimental methodology).

The paper compares two builds of each benchmark:

* **baseline** — classically optimized superblock code (IMPACT-style):
  profile, form superblocks with tail duplication, clean up;
* **height-reduced** — the baseline with FRP conversion and the ICBM
  control CPR schema applied.

:func:`build_baseline` and :func:`apply_control_cpr` implement those two
stages; :func:`build_workload` runs both and differentially verifies that
every build computes the same store trace and return value on every input.
Cycle estimation and operation counting live in :mod:`repro.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import CPRConfig, DEFAULT_CONFIG
from repro.core.icbm import ICBMReport, apply_icbm_to_program
from repro.errors import TransformError
from repro.ir.procedure import Program
from repro.ir.verify import verify_program
from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code, remove_unreachable_blocks
from repro.opt.frp import frp_convert_procedure
from repro.opt.ifconvert import IfConvertConfig, if_convert_procedure
from repro.opt.rename import rename_procedure_registers
from repro.opt.superblock import SuperblockConfig, form_superblocks
from repro.sim.interpreter import DEFAULT_FUEL, Interpreter
from repro.sim.profiler import ProfileData, profile_program


@dataclass
class PipelineOptions:
    """Knobs for the full build pipeline.

    ``if_convert`` enables traditional if-conversion of unbiased diamonds
    before superblock formation — the paper's future-work suggestion,
    disabled by default to match its experimental setup.
    """

    superblock: SuperblockConfig = field(default_factory=SuperblockConfig)
    cpr: CPRConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    if_convert: bool = False
    if_convert_config: Optional[IfConvertConfig] = None
    verify_equivalence: bool = True
    fuel: int = DEFAULT_FUEL


@dataclass
class WorkloadBuild:
    """Both builds of one workload plus their profiles."""

    name: str
    baseline: Program
    baseline_profile: ProfileData
    transformed: Program
    transformed_profile: ProfileData
    icbm_report: ICBMReport


def _run_all(program: Program, inputs, entry: str, fuel: int):
    """Execute *program* on each input; return the observable results."""
    results = []
    for item in inputs:
        interp = Interpreter(program, fuel=fuel)
        args = ()
        if item is not None:
            if callable(item):
                returned = item(interp)
                if returned is not None:
                    args = tuple(returned)
            else:
                setup, args = item
                if setup is not None:
                    setup(interp)
        results.append(interp.run(entry=entry, args=args))
    return results


def build_baseline(
    program: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
) -> Tuple[Program, ProfileData]:
    """Produce the classically optimized superblock baseline."""
    options = options or PipelineOptions()
    reference = None
    if options.verify_equivalence:
        reference = _run_all(program, inputs, entry, options.fuel)

    baseline = program.clone()
    seed_profile = profile_program(
        baseline, inputs=inputs, entry=entry, fuel=options.fuel
    )
    for proc in baseline.procedures.values():
        if options.if_convert:
            if_convert_procedure(
                proc, seed_profile, options.if_convert_config
            )
        form_superblocks(proc, seed_profile, options.superblock)
        rename_procedure_registers(proc)
        propagate_copies(proc)
        eliminate_dead_code(proc)
        remove_unreachable_blocks(proc)
    verify_program(baseline)

    if options.verify_equivalence:
        rebuilt = _run_all(baseline, inputs, entry, options.fuel)
        _check_equivalent(reference, rebuilt, "superblock formation")

    profile = profile_program(
        baseline, inputs=inputs, entry=entry, fuel=options.fuel
    )
    return baseline, profile


def apply_control_cpr(
    baseline: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
) -> Tuple[Program, ProfileData, ICBMReport]:
    """FRP-convert the baseline and apply ICBM."""
    options = options or PipelineOptions()
    reference = None
    if options.verify_equivalence:
        reference = _run_all(baseline, inputs, entry, options.fuel)

    transformed = baseline.clone()
    # Snapshot every block so hyperblocks where ICBM ends up not firing can
    # be restored: the paper measures the *unoptimized* code wherever
    # control CPR is not applied (FRP conversion alone only adds
    # dependences).
    snapshots = {}
    for proc in transformed.procedures.values():
        for block in proc.blocks:
            snapshots[(proc.name, block.label)] = (
                [op.clone() for op in block.ops],
                block.fallthrough,
            )
        frp_convert_procedure(proc)
    verify_program(transformed)
    # Profile the FRP-converted build: match's heuristics key on the branch
    # operations of exactly this program.
    frp_profile = profile_program(
        transformed, inputs=inputs, entry=entry, fuel=options.fuel
    )
    report = apply_icbm_to_program(
        transformed, profile=frp_profile, config=options.cpr
    )
    transformed_labels = {
        (b.proc_name, b.label) for b in report.blocks if b.transformed > 0
    }
    for proc in transformed.procedures.values():
        for block in proc.blocks:
            key = (proc.name, block.label)
            if key not in snapshots:
                continue  # new (compensation) block
            if (proc.name, block.label.name) in transformed_labels:
                continue
            ops, fallthrough = snapshots[key]
            block.ops = [op.clone() for op in ops]
            block.fallthrough = fallthrough
    verify_program(transformed)

    if options.verify_equivalence:
        rebuilt = _run_all(transformed, inputs, entry, options.fuel)
        _check_equivalent(reference, rebuilt, "control CPR")

    final_profile = profile_program(
        transformed, inputs=inputs, entry=entry, fuel=options.fuel
    )
    return transformed, final_profile, report


def build_workload(
    name: str,
    program: Program,
    inputs,
    options: Optional[PipelineOptions] = None,
    entry: str = "main",
) -> WorkloadBuild:
    """Run the full two-build methodology for one workload."""
    options = options or PipelineOptions()
    baseline, baseline_profile = build_baseline(
        program, inputs, options, entry
    )
    transformed, transformed_profile, report = apply_control_cpr(
        baseline, inputs, options, entry
    )
    return WorkloadBuild(
        name=name,
        baseline=baseline,
        baseline_profile=baseline_profile,
        transformed=transformed,
        transformed_profile=transformed_profile,
        icbm_report=report,
    )


def _check_equivalent(reference: List, rebuilt: List, stage: str):
    for index, (before, after) in enumerate(zip(reference, rebuilt)):
        if not before.equivalent_to(after):
            raise TransformError(
                f"{stage} changed observable behaviour on input {index}: "
                f"return {before.return_value} -> {after.return_value}, "
                f"{len(before.store_trace)} -> {len(after.store_trace)} "
                "stores"
            )
