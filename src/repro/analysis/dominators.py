"""Dominator computation over the CFG (Cooper-Harvey-Kennedy iterative)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.cfg import ControlFlowGraph
from repro.ir.operands import Label


class DominatorTree:
    """Immediate dominators for every reachable block."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        self.order: List[Label] = cfg.reverse_postorder()
        self._index = {label: i for i, label in enumerate(self.order)}
        self.idom: Dict[Label, Optional[Label]] = {}
        self._solve()

    def _solve(self):
        entry = self.cfg.entry
        self.idom = {label: None for label in self.order}
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for label in self.order:
                if label == entry:
                    continue
                processed = [
                    p
                    for p in self.cfg.predecessors(label)
                    if p in self._index and self.idom.get(p) is not None
                ]
                if not processed:
                    continue
                new_idom = processed[0]
                for pred in processed[1:]:
                    new_idom = self._intersect(pred, new_idom)
                if self.idom[label] != new_idom:
                    self.idom[label] = new_idom
                    changed = True

    def _intersect(self, a: Label, b: Label) -> Label:
        while a != b:
            while self._index[a] > self._index[b]:
                a = self.idom[a]
            while self._index[b] > self._index[a]:
                b = self.idom[b]
        return a

    def dominates(self, a: Label, b: Label) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        if a == b:
            return True
        current = b
        while current is not None and current != self.cfg.entry:
            current = self.idom.get(current)
            if current == a:
                return True
        return a == self.cfg.entry
