"""Predicate-cognizant program analyses (Elcor-style, per [JS96])."""

from repro.analysis.defuse import (
    DefUseChains,
    branch_compare_map,
    guarding_compare,
)
from repro.analysis.dependence import DepEdge, DependenceGraph
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import (
    LivenessAnalysis,
    liveness_expressions,
    promotion_is_legal,
)
from repro.analysis.loops import Loop, find_loops
from repro.analysis.predexpr import (
    AtomUniverse,
    MAX_ATOMS,
    PredicateExpr,
    conservative_disjoint,
    conservative_implies,
)
from repro.analysis.predtrack import PredicateTracker

__all__ = [
    "AtomUniverse",
    "DefUseChains",
    "DepEdge",
    "DependenceGraph",
    "DominatorTree",
    "LivenessAnalysis",
    "Loop",
    "MAX_ATOMS",
    "PredicateExpr",
    "PredicateTracker",
    "branch_compare_map",
    "conservative_disjoint",
    "conservative_implies",
    "find_loops",
    "guarding_compare",
    "liveness_expressions",
    "promotion_is_legal",
]
