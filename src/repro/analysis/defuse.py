"""In-block def-use chains and branch/compare association.

The match phase needs, "for every branch or compare operation, the unique
compare-to-predicate operation that computes the guarding predicate, if such
an operation exists within the region" (paper Section 5.2). Definitions in
predicated code are usually *guarded*, so the analysis tracks **may-reaching
definitions**: every definition since the last unguarded, unconditional
(killing) write. A register with exactly one may-reaching definition has a
unique computing op; uses link to all may-reaching definitions, giving the
def-use chains that off-trace motion and speculation traverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import PredReg, TRUE_PRED
from repro.ir.operation import Operation


@dataclass
class DefUseChains:
    """May-reaching definitions and uses, from one forward scan."""

    block: Block
    # reaching[i][r]: list of ops that may define r at op i (empty list is
    # never stored; absence means "defined before the block").
    reaching: List[Dict] = field(default_factory=list)
    # uses[uid]: (user op, operand) pairs reading each op's results.
    uses: Dict[int, List[Tuple[Operation, object]]] = field(
        default_factory=dict
    )

    @classmethod
    def build(cls, block: Block) -> "DefUseChains":
        chains = cls(block)
        current: Dict = {}
        for op in block.ops:
            chains.reaching.append({r: list(v) for r, v in current.items()})
            for reg in op.source_registers():
                for definition in current.get(reg, ()):
                    chains.uses.setdefault(definition.uid, []).append(
                        (op, reg)
                    )
            always = set(op.always_writes())
            for reg in op.unconditional_writes():
                if reg in always:
                    current[reg] = [op]  # killing definition
                else:
                    current.setdefault(reg, []).append(op)
            for target in op.pred_targets():
                if target.action.kind != "U":
                    current.setdefault(target.reg, []).append(op)
        return chains

    # ------------------------------------------------------------------
    def may_defs(self, index: int, reg) -> List[Operation]:
        """All ops that may define *reg* as seen by op *index*."""
        return list(self.reaching[index].get(reg, ()))

    def reaching_def(self, index: int, reg) -> Optional[Operation]:
        """The *unique* in-block op computing *reg* at op *index*, or None
        when there is no in-block definition or it is not unique."""
        defs = self.reaching[index].get(reg)
        if defs and len(defs) == 1:
            return defs[0]
        return None

    def users_of(self, op: Operation) -> List[Operation]:
        """Ops reading any value *op* may define (deduplicated, in order)."""
        seen = set()
        result = []
        for user, _ in self.uses.get(op.uid, []):
            if user.uid not in seen:
                seen.add(user.uid)
                result.append(user)
        return result


def guarding_compare(
    block: Block, chains: DefUseChains, op: Operation
) -> Optional[Operation]:
    """The cmpp computing *op*'s controlling predicate, if unique in-block.

    For a branch, the controlling predicate is its source predicate
    (``srcs[0]``); for other guarded ops it is the guard itself.
    """
    index = block.index_of(op)
    if op.opcode is Opcode.BRANCH and isinstance(op.srcs[0], PredReg):
        pred = op.srcs[0]
    elif op.guard != TRUE_PRED:
        pred = op.guard
    else:
        return None
    definition = chains.reaching_def(index, pred)
    if definition is not None and definition.opcode is Opcode.CMPP:
        return definition
    return None


def branch_source_action(compare: Operation, branch: Operation):
    """The cmpp action computing the branch's source predicate, or None."""
    from repro.ir.semantics import Action

    source = branch.srcs[0]
    for target in compare.pred_targets():
        if target.reg == source and target.action in (Action.UN, Action.UC):
            return target.action
    return None


def branch_complement_pred(compare: Operation, branch: Operation):
    """The fall-through predicate: the compare's *other* U-kind target.

    For an UN-sourced branch this is the UC target and vice versa (branch
    inversion during superblock formation produces UC-sourced branches).
    """
    from repro.ir.semantics import Action

    source = branch.srcs[0]
    for target in compare.pred_targets():
        if target.reg != source and target.action in (
            Action.UN, Action.UC
        ):
            return target.reg
    return None


def branch_taken_cond(compare: Operation, branch: Operation):
    """The comparison condition under which the branch *takes* (the
    compare's own condition, negated for a UC-sourced branch)."""
    from repro.ir.semantics import Action

    action = branch_source_action(compare, branch)
    if action is Action.UC:
        return compare.cond.negate()
    return compare.cond


def branch_compare_map(block: Block) -> Dict[int, Optional[Operation]]:
    """Map each branch uid to its guarding cmpp (or None)."""
    chains = DefUseChains.build(block)
    result: Dict[int, Optional[Operation]] = {}
    for op in block.ops:
        if op.opcode is Opcode.BRANCH:
            result[op.uid] = guarding_compare(block, chains, op)
    return result
