"""Liveness analyses for predicated code ([JS96]-style).

Boolean block-boundary liveness would be uselessly conservative on
predicated code: a guarded definition never *definitely* kills, so in
FRP-converted loops every guarded temporary looks live around the back
edge and predicate speculation could never promote anything. Instead, the
in-block transfer runs on predicate *expressions*: for each register the
analysis tracks the condition under which its current value is still
needed. A use under guard ``g`` contributes ``g``; a definition under
guard ``g`` kills ``g``'s share (``needed &= !g``); a definition that
writes regardless of its guard (unguarded ops, U-kind cmpp targets — see
Table 1) kills outright; a side exit contributes its taken condition for
every register live into the target.

Block boundaries remain boolean (a register is live-in when its needed
expression is satisfiable), so the fixpoint is the classic backward one.

:func:`liveness_expressions` exposes the same transfer with per-point
snapshots for predicate speculation, and :func:`promotion_is_legal`
implements the paper's Section 5.1 promotion test: promoting a definition
of ``r`` from guard ``p`` to true is legal iff ``needed_after(r) AND NOT
p`` is unsatisfiable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.predtrack import PredicateTracker
from repro.ir.block import Block
from repro.ir.cfg import ControlFlowGraph
from repro.ir.opcodes import Opcode
from repro.ir.operands import Label, is_register
from repro.ir.procedure import Procedure


class _ExprState:
    """Mutable map register -> needed expression (None = unknown/any)."""

    __slots__ = ("needed",)

    def __init__(self):
        self.needed: Dict = {}

    def add(self, reg, expr):
        """needed[reg] |= expr (None absorbs)."""
        if reg in self.needed:
            existing = self.needed[reg]
            if existing is None or expr is None:
                self.needed[reg] = None
            else:
                self.needed[reg] = existing | expr
        else:
            self.needed[reg] = expr

    def kill_always(self, reg):
        self.needed.pop(reg, None)

    def kill_under(self, reg, guard_expr):
        """needed[reg] &= ~guard (guard None = unknown: no kill)."""
        if reg not in self.needed:
            return
        existing = self.needed[reg]
        if existing is None or guard_expr is None:
            return  # cannot refine
        survived = existing & ~guard_expr
        if survived.is_false():
            del self.needed[reg]
        else:
            self.needed[reg] = survived

    def live_registers(self) -> Set:
        return set(self.needed)


def _transfer_op(op, state: _ExprState, tracker: PredicateTracker,
                 live_in_of, true_expr):
    """Apply one op's backward liveness transfer to *state*."""
    guard = tracker.guard_expr.get(op.uid)

    # Side exits: the target's live-in is needed under the taken condition.
    if op.opcode in (Opcode.BRANCH, Opcode.JUMP):
        target = op.branch_target()
        if target is not None:
            taken = (
                tracker.taken_expr.get(op.uid)
                if op.opcode is Opcode.BRANCH
                else true_expr
            )
            for reg in live_in_of(target):
                state.add(reg, taken)

    # Kills.
    always = set(op.always_writes())
    for reg in op.unconditional_writes():
        if reg in always:
            state.kill_always(reg)
        else:
            state.kill_under(reg, guard)

    # Uses. The guard register itself is read whenever the op is reached
    # (its being false is what nullifies), so it is needed unconditionally.
    # A branch's target register only matters when the branch takes.
    if op.is_guarded:
        state.add(op.guard, true_expr)
    branch_btr = (
        op.srcs[1]
        if op.opcode is Opcode.BRANCH and len(op.srcs) == 2
        else None
    )
    for reg in op.srcs:
        if not is_register(reg):
            continue
        if reg is branch_btr:
            state.add(reg, tracker.taken_expr.get(op.uid))
        else:
            state.add(reg, guard)


class LivenessAnalysis:
    """Predicate-aware liveness over a whole procedure."""

    def __init__(self, proc: Procedure):
        self.proc = proc
        self.cfg = ControlFlowGraph(proc)
        self._trackers: Dict[Label, PredicateTracker] = {}
        self._live_in: Dict[Label, Set] = {b.label: set() for b in proc}
        self._solve()

    # ------------------------------------------------------------------
    def tracker(self, block: Block) -> PredicateTracker:
        existing = self._trackers.get(block.label)
        if existing is None:
            existing = PredicateTracker(block)
            self._trackers[block.label] = existing
        return existing

    def live_in(self, label) -> Set:
        if isinstance(label, str):
            label = Label(label)
        return self._live_in.get(label, set())

    def live_out(self, label) -> Set:
        if isinstance(label, str):
            label = Label(label)
        result: Set = set()
        for succ in set(self.cfg.successors(label)):
            result |= self._live_in.get(succ, set())
        return result

    # ------------------------------------------------------------------
    def _initial_state(self, block: Block, tracker) -> _ExprState:
        state = _ExprState()
        if block.terminator() is None and block.fallthrough is not None:
            true_expr = tracker.universe.true()
            for reg in self._live_in.get(block.fallthrough, set()):
                state.add(reg, true_expr)
        return state

    def _scan_block(self, block: Block) -> Set:
        tracker = self.tracker(block)
        true_expr = tracker.universe.true()
        state = self._initial_state(block, tracker)
        live_in_of = lambda label: self._live_in.get(label, set())  # noqa: E731
        for op in reversed(block.ops):
            _transfer_op(op, state, tracker, live_in_of, true_expr)
        return state.live_registers()

    def _solve(self):
        changed = True
        while changed:
            changed = False
            for block in reversed(self.proc.blocks):
                new_in = self._scan_block(block)
                if new_in != self._live_in[block.label]:
                    self._live_in[block.label] = new_in
                    changed = True


def liveness_expressions(
    block: Block,
    tracker: PredicateTracker,
    liveness: Optional[LivenessAnalysis] = None,
) -> List[Dict]:
    """Per-op maps ``register -> needed-later expression`` (just *after*
    each op). Registers absent from a map are dead at that point; a None
    expression means "needed under unknown conditions".
    """
    true_expr = tracker.universe.true()
    state = _ExprState()
    if liveness is not None:
        if block.terminator() is None and block.fallthrough is not None:
            for reg in liveness.live_in(block.fallthrough):
                state.add(reg, true_expr)

    def live_in_of(label):
        if liveness is None:
            return ()
        return liveness.live_in(label)

    after_points: List[Dict] = [dict()] * len(block.ops)
    for index in range(len(block.ops) - 1, -1, -1):
        after_points[index] = dict(state.needed)
        _transfer_op(
            block.ops[index], state, tracker, live_in_of, true_expr
        )
    return after_points


def promotion_is_legal(op, after_needed: Dict, tracker: PredicateTracker):
    """May *op*'s guard be promoted to TRUE without clobbering live values?

    Legal iff for every unconditional destination ``r``, the value of ``r``
    just after the op is never needed under conditions where the op would
    *not* originally have executed (``needed_after(r) AND NOT guard``
    unsatisfiable).
    """
    guard = tracker.guard_expr.get(op.uid)
    if guard is None:
        return False
    for reg in op.unconditional_writes():
        if reg not in after_needed:
            continue  # dead after op: promotion cannot hurt
        needed = after_needed[reg]
        if needed is None:
            return False
        # The promoted op overwrites r always; the overwrite is harmful
        # exactly when the old value would have survived (guard false in
        # the original program) yet is still needed.
        if not (needed & ~guard).is_false():
            return False
    return True
