"""Predicate-aware dependence graph over one block.

Nodes are the block's operations (by position); edges carry a *kind* and a
*latency* (minimum cycle distance for the scheduler). Construction follows
the EPIC scheduling model of the paper:

* register flow/anti/output dependences, pruned when the two operations'
  execution conditions are provably disjoint (Elcor's predicate-cognizant
  analysis); wired-or / wired-and cmpp writes to the same predicate are
  mutually unordered (the paper's Section 3), each ordered only against the
  initializing definition and against readers;
* memory dependences with a simple region-based alias test (operations
  tagged with distinct ``region`` attrs never alias);
* control dependences: a non-speculative operation may not move above a
  branch (edge latency = branch latency) nor may a branch take before a
  preceding non-speculative operation has issued (latency 0); two branches
  are serialized by the branch latency. Every such edge is *omitted* when
  the branch's taken condition is disjoint from the other operation's
  execution condition — this is exactly what makes FRP-converted branches
  freely reorderable and lets guarded stores float;
* restricted speculation: a speculative operation writing a register that is
  live into some earlier branch's off-trace target may not be hoisted above
  that branch (unless guard-disjoint), keeping estimated schedules honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.liveness import LivenessAnalysis
from repro.analysis.memaddr import AddressResolver, may_alias_forms
from repro.analysis.predtrack import PredicateTracker
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import TRUE_PRED
from repro.machine.latency import LatencyModel


@dataclass(frozen=True)
class DepEdge:
    """A scheduling constraint: dst issues >= src issue + latency."""

    src: int
    dst: int
    kind: str
    latency: int

    def __repr__(self):
        return f"{self.src} -{self.kind}({self.latency})-> {self.dst}"


class DependenceGraph:
    """Dependences among ``block.ops``; indices are op positions."""

    def __init__(
        self,
        block: Block,
        latencies: LatencyModel,
        tracker: Optional[PredicateTracker] = None,
        liveness: Optional[LivenessAnalysis] = None,
    ):
        self.block = block
        self.ops = list(block.ops)
        self.latencies = latencies
        self.tracker = tracker or PredicateTracker(block)
        self.liveness = liveness
        self.edges: List[DepEdge] = []
        self.preds: Dict[int, List[DepEdge]] = {
            i: [] for i in range(len(self.ops))
        }
        self.succs: Dict[int, List[DepEdge]] = {
            i: [] for i in range(len(self.ops))
        }
        self._edge_set: Set = set()
        self._build()

    # ------------------------------------------------------------------
    # Predicate-awareness helpers
    # ------------------------------------------------------------------
    def _disjoint(self, op_a, op_b) -> bool:
        return self.tracker.disjoint(op_a, op_b)

    def _taken_disjoint_from(self, branch, other) -> bool:
        """Can *branch* provably never take while *other* is effective?"""
        taken = self.tracker.taken_expr.get(branch.uid)
        exec_expr = self.tracker.exec_expr(other)
        if taken is None or exec_expr is None:
            return False
        return taken.disjoint_with(exec_expr)

    # ------------------------------------------------------------------
    # Edge management
    # ------------------------------------------------------------------
    def _add(self, src: int, dst: int, kind: str, latency: int):
        if src == dst:
            return
        key = (src, dst, kind)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        edge = DepEdge(src, dst, kind, latency)
        self.edges.append(edge)
        self.succs[src].append(edge)
        self.preds[dst].append(edge)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self):
        self._build_register_deps()
        self._build_memory_deps()
        self._build_control_deps()
        self._build_terminator_deps()

    def _build_register_deps(self):
        # For each register: the last ordinary definition, the wired (O/A)
        # accumulations since it, and the readers since it. A definition is
        # *guard-conditional* unless it happens regardless of the guard
        # (unguarded ops, and U-kind cmpp targets per Table 1) — only
        # guard-conditional accesses may be pruned by guard disjointness.
        last_def: Dict = {}          # reg -> index of last ordinary def
        conditional_def: Dict = {}   # reg -> was that def guard-conditional?
        accumulators: Dict = {}      # reg -> [indices] of O/A writes
        readers: Dict = {}           # reg -> [indices] since last def

        for index, op in enumerate(self.ops):
            always = set(op.always_writes())

            # Flow edges: a read sees the last ordinary def plus every
            # wired accumulation since it. Flow edges are never pruned by
            # disjointness: even a nullified producer leaves the register
            # holding the value the reader would observe, so ordering is
            # required to read the architecturally correct value.
            for reg in op.source_registers():
                if reg in last_def:
                    def_index = last_def[reg]
                    producer = self.ops[def_index]
                    self._add(
                        def_index, index, "flow",
                        self.latencies.latency(producer.opcode),
                    )
                for acc_index in accumulators.get(reg, ()):
                    producer = self.ops[acc_index]
                    self._add(
                        acc_index, index, "flow",
                        self.latencies.latency(producer.opcode),
                    )
                readers.setdefault(reg, []).append(index)

            # Wired (O/A) writes: unordered among themselves, ordered after
            # the initializing def and after prior readers.
            for target in op.pred_targets():
                if target.action.kind == "U":
                    continue
                reg = target.reg
                if reg in last_def:
                    self._add(last_def[reg], index, "output", 1)
                for reader_index in readers.get(reg, ()):
                    reader = self.ops[reader_index]
                    if not self._disjoint(reader, op):
                        self._add(reader_index, index, "anti", 0)
                accumulators.setdefault(reg, []).append(index)

            # Ordinary writes.
            for reg in op.unconditional_writes():
                conditional = reg not in always
                if reg in last_def:
                    prunable = conditional and conditional_def.get(reg, True)
                    previous = self.ops[last_def[reg]]
                    if not (prunable and self._disjoint(previous, op)):
                        self._add(last_def[reg], index, "output", 1)
                for acc_index in accumulators.get(reg, ()):
                    self._add(acc_index, index, "output", 1)
                for reader_index in readers.get(reg, ()):
                    reader = self.ops[reader_index]
                    if reader_index == index:
                        continue
                    if conditional and self._disjoint(reader, op):
                        continue
                    self._add(reader_index, index, "anti", 0)
                last_def[reg] = index
                conditional_def[reg] = conditional
                accumulators[reg] = []
                readers[reg] = []

    # ------------------------------------------------------------------
    def _may_alias(self, index_a: int, index_b: int) -> bool:
        op_a, op_b = self.ops[index_a], self.ops[index_b]
        region_a = op_a.attrs.get("region")
        region_b = op_b.attrs.get("region")
        if (
            region_a is not None
            and region_b is not None
            and region_a != region_b
        ):
            return False
        form_a = self._address_form(index_a)
        form_b = self._address_form(index_b)
        return may_alias_forms(form_a, form_b)

    def _address_form(self, index: int):
        form = self._address_forms.get(index)
        if form is None:
            form = self._resolver.form_for(index, self.ops[index].srcs[0])
            self._address_forms[index] = form
        return form

    def _build_memory_deps(self):
        self._resolver = AddressResolver(self.block)
        self._address_forms: Dict[int, object] = {}
        stores: List[int] = []
        loads: List[int] = []
        for index, op in enumerate(self.ops):
            if op.opcode is Opcode.CALL:
                # Calls are memory barriers.
                for prior in stores + loads:
                    self._add(prior, index, "mem", 1)
                stores = [index]
                loads = [index]
                continue
            if op.opcode is Opcode.LOAD:
                for store_index in stores:
                    store = self.ops[store_index]
                    if self._may_alias(store_index, index) and not (
                        self._disjoint(store, op)
                    ):
                        self._add(
                            store_index, index, "mem",
                            self.latencies.latency(store.opcode),
                        )
                loads.append(index)
            elif op.opcode is Opcode.STORE:
                for store_index in stores:
                    store = self.ops[store_index]
                    if self._may_alias(store_index, index) and not (
                        self._disjoint(store, op)
                    ):
                        self._add(store_index, index, "mem", 1)
                for load_index in loads:
                    load = self.ops[load_index]
                    if self._may_alias(load_index, index) and not (
                        self._disjoint(load, op)
                    ):
                        self._add(load_index, index, "mem", 0)
                stores.append(index)

    # ------------------------------------------------------------------
    def _build_control_deps(self):
        branch_latency = self.latencies.branch
        branches: List[int] = []
        nonspec_since: List[int] = []  # non-speculative ops seen so far
        live_at_target: Dict[int, Set] = {}

        for index, op in enumerate(self.ops):
            if op.opcode is Opcode.BRANCH:
                branch = op
                # Serialize against earlier branches unless mutually
                # exclusive (FRP-converted branches overlap freely).
                for prior_index in branches:
                    prior = self.ops[prior_index]
                    if not self._taken_disjoint_from(prior, branch):
                        self._add(
                            prior_index, index, "control", branch_latency
                        )
                # A branch must not take before earlier non-speculative ops
                # have issued.
                for ns_index in nonspec_since:
                    other = self.ops[ns_index]
                    if not self._taken_disjoint_from(branch, other):
                        self._add(ns_index, index, "control", 0)
                if self.liveness is not None:
                    target = branch.branch_target()
                    live = (
                        self.liveness.live_in(target)
                        if target is not None
                        else None
                    )
                    live_at_target[index] = live
                else:
                    live = None
                # Downward-motion restriction: an earlier op whose result
                # is live at this branch's taken target must issue before
                # the branch takes effect (the dual of restricted upward
                # speculation) — otherwise the off-trace path would read a
                # value the schedule never produced.
                for prior_index in range(index):
                    prior = self.ops[prior_index]
                    written = prior.unconditional_writes()
                    if not written:
                        continue
                    if live is not None and not any(
                        reg in live for reg in written
                    ):
                        continue
                    if self._taken_disjoint_from(branch, prior):
                        continue
                    self._add(prior_index, index, "control", 0)
                branches.append(index)
                nonspec_since.append(index)
                continue

            if not op.opcode.is_speculable():
                # Store/call: may not move above any prior branch that might
                # take while this op would be effective.
                for branch_index in branches:
                    branch = self.ops[branch_index]
                    if not self._taken_disjoint_from(branch, op):
                        self._add(
                            branch_index, index, "control", branch_latency
                        )
                nonspec_since.append(index)
                continue

            # Speculative op: free to hoist above branches unless it would
            # clobber a register live on some branch's off-trace path.
            written = op.unconditional_writes()
            if not written:
                continue
            for branch_index in branches:
                live = live_at_target.get(branch_index)
                if self.liveness is None:
                    clobbers = True  # no liveness info: be conservative
                elif live is None:
                    clobbers = True
                else:
                    clobbers = any(reg in live for reg in written)
                if clobbers:
                    branch = self.ops[branch_index]
                    if not self._taken_disjoint_from(branch, op):
                        self._add(
                            branch_index, index, "control", branch_latency
                        )

    def _build_terminator_deps(self):
        if not self.ops:
            return
        last = self.ops[-1]
        if last.opcode in (Opcode.JUMP, Opcode.RETURN):
            terminator_index = len(self.ops) - 1
            for index in range(terminator_index):
                self._add(index, terminator_index, "control", 0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predecessors(self, index: int) -> List[DepEdge]:
        return self.preds[index]

    def successors(self, index: int) -> List[DepEdge]:
        return self.succs[index]

    def transitive_successors(
        self, start: int, skip_edge=None
    ) -> Set[int]:
        """Indices reachable from *start* via dependence edges.

        *skip_edge*, when given, is a predicate ``f(edge) -> bool``; edges
        for which it returns True are not traversed (used by the
        separability test's fall-through-guard exemption).
        """
        seen: Set[int] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            for edge in self.succs[current]:
                if skip_edge is not None and skip_edge(edge):
                    continue
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return seen

    def critical_path_height(self) -> Dict[int, int]:
        """Longest-path height (cycles to region end) per op, ignoring
        resources — the scheduler's priority function."""
        heights: Dict[int, int] = {}
        for index in range(len(self.ops) - 1, -1, -1):
            op = self.ops[index]
            base = self.latencies.latency(op.opcode)
            best = base
            for edge in self.succs[index]:
                best = max(best, edge.latency + heights[edge.dst])
            heights[index] = best
        return heights
