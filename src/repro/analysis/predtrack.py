"""Per-block symbolic predicate tracking.

:class:`PredicateTracker` walks a block's operation list once, maintaining a
symbolic environment mapping each predicate register to a
:class:`~repro.analysis.predexpr.PredicateExpr` over compare-result atoms.
Predicates read before any in-block definition get fresh entry atoms
(unknown inputs), so all answers are sound for a single traversal of the
block.

Outputs, keyed by operation uid:

* ``guard_expr`` — the op's guard value as an expression (None = unknown);
* ``taken_expr`` — for ``branch`` ops, guard AND source predicate: the
  condition under which the branch *takes* wherever it is scheduled;
* ``def_expr``  — for cmpp/pred ops, each written predicate's value *after*
  the op;
* ``cmpp_atom`` — the fresh atom standing for a cmpp's compare result.

These drive predicate-aware dependence pruning, legal branch overlap in the
scheduler, speculation legality, and ICBM's suitability reasoning.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.predexpr import AtomUniverse, PredicateExpr
from repro.ir.block import Block
from repro.ir.opcodes import Cond, Opcode
from repro.ir.operands import Imm, Label, PredReg, Reg, TRUE_PRED


def _and(a, b):
    if a is None or b is None:
        return None
    return a & b


def _or(a, b):
    if a is None or b is None:
        return None
    return a | b


def _not(a):
    if a is None:
        return None
    return ~a


class PredicateTracker:
    """Symbolic predicate analysis of one block."""

    def __init__(self, block: Block, max_atoms: Optional[int] = None):
        self.block = block
        self.universe = (
            AtomUniverse(max_atoms) if max_atoms else AtomUniverse()
        )
        self.guard_expr: Dict[int, Optional[PredicateExpr]] = {}
        self.taken_expr: Dict[int, Optional[PredicateExpr]] = {}
        self.def_expr: Dict[int, Dict[PredReg, Optional[PredicateExpr]]] = {}
        self.cmpp_atom: Dict[int, Optional[PredicateExpr]] = {}
        self.entry_expr: Dict[PredReg, Optional[PredicateExpr]] = {}
        self._final_env: Dict[PredReg, Optional[PredicateExpr]] = {}
        self._analyze()

    # ------------------------------------------------------------------
    def _lookup(self, env, pred: PredReg):
        if pred == TRUE_PRED:
            return self.universe.true()
        if pred in env:
            return env[pred]
        # Unknown block input: give it a fresh atom (or None if saturated).
        atom = self.universe.atom()
        self.entry_expr[pred] = atom
        env[pred] = atom
        return atom

    # ------------------------------------------------------------------
    # Atom unification: two compares computing the same comparison of the
    # same values (identified by reaching definitions of their sources)
    # share one atom — negated/swapped conditions map to its complement.
    # ICBM lookaheads and full-CPR terms duplicate the original compares,
    # and without unification their mutual exclusion would be unprovable.
    # ------------------------------------------------------------------
    def _operand_key(self, defs, operand):
        if isinstance(operand, Imm):
            return ("imm", operand.value)
        if isinstance(operand, Label):
            return ("label", operand.name)
        if isinstance(operand, (Reg, PredReg)):
            producers = defs.get(operand)
            if producers is None:
                return ("entry", operand)
            return ("defs", operand, tuple(sorted(producers)))
        return ("opaque", id(operand))

    def _compare_atom(self, defs, op):
        cond = op.cond
        srcs = list(op.srcs)
        if cond in (Cond.GT, Cond.GE):
            cond = cond.swap()
            srcs.reverse()
        negated = cond in (Cond.NE, Cond.GT, Cond.GE)
        if cond is Cond.NE:
            cond = Cond.EQ
        keys = [self._operand_key(defs, src) for src in srcs]
        if cond is Cond.EQ:
            keys = sorted(keys)
        cache_key = (cond, tuple(keys))
        atom = self._atom_cache.get(cache_key)
        if atom is None:
            atom = self.universe.atom()
            if atom is None:
                return None
            self._atom_cache[cache_key] = atom
        return _not(atom) if negated else atom

    def _analyze(self):
        env: Dict[PredReg, Optional[PredicateExpr]] = {}
        self._atom_cache: Dict = {}
        defs: Dict = {}  # register -> frozen tuple of may-def uids

        def record_defs(op):
            always = set(op.always_writes())
            for reg in op.unconditional_writes():
                if reg in always:
                    defs[reg] = (op.uid,)
                else:
                    defs[reg] = tuple(defs.get(reg, ())) + (op.uid,)
            for target in op.pred_targets():
                if target.action.kind != "U":
                    defs[target.reg] = tuple(
                        defs.get(target.reg, ())
                    ) + (op.uid,)

        for op in self.block.ops:
            guard = self._lookup(env, op.guard)
            self.guard_expr[op.uid] = guard
            opcode = op.opcode

            if opcode is Opcode.CMPP:
                atom = self._compare_atom(defs, op)
                self.cmpp_atom[op.uid] = atom
                written: Dict[PredReg, Optional[PredicateExpr]] = {}
                for target in op.dests:
                    effective = (
                        _not(atom) if target.action.complemented else atom
                    )
                    kind = target.action.kind
                    if kind == "U":
                        new = _and(guard, effective)
                    else:
                        old = self._lookup(env, target.reg)
                        term = _and(guard, effective)
                        if kind == "O":
                            new = _or(old, term)
                        else:  # 'A': clears when guard true and cond fails
                            new = _and(old, _or(_not(guard), effective))
                    env[target.reg] = new
                    written[target.reg] = new
                self.def_expr[op.uid] = written
                record_defs(op)
                continue

            if opcode is Opcode.PRED_CLEAR:
                dest = op.dests[0]
                env[dest] = self.universe.false()
                self.def_expr[op.uid] = {dest: env[dest]}
                record_defs(op)
                continue

            if opcode is Opcode.PRED_SET:
                dest = op.dests[0]
                src = op.srcs[0]
                if isinstance(src, PredReg):
                    value = self._lookup(env, src)
                elif isinstance(src, Imm):
                    value = self.universe.constant(bool(src.value))
                else:
                    value = self.universe.atom()
                # A guarded pred_set only updates under the guard.
                if op.guard == TRUE_PRED:
                    env[dest] = value
                else:
                    old = self._lookup(env, dest)
                    env[dest] = _or(_and(guard, value),
                                    _and(_not(guard), old))
                self.def_expr[op.uid] = {dest: env[dest]}
                record_defs(op)
                continue

            if opcode is Opcode.BRANCH:
                source = op.srcs[0]
                if isinstance(source, PredReg):
                    pred_value = self._lookup(env, source)
                else:
                    pred_value = None
                self.taken_expr[op.uid] = _and(guard, pred_value)
                continue  # branches define nothing

            # Any other op that writes a predicate makes it unknown.
            for dest in op.dest_registers():
                if isinstance(dest, PredReg):
                    env[dest] = self.universe.atom()
                    self.def_expr.setdefault(op.uid, {})[dest] = env[dest]
            record_defs(op)
        self._final_env = env

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def exec_expr(self, op) -> Optional[PredicateExpr]:
        """Condition under which *op*'s effect happens wherever scheduled:
        its guard, conjoined with the source predicate for branches."""
        if op.opcode is Opcode.BRANCH:
            return self.taken_expr.get(op.uid)
        return self.guard_expr.get(op.uid)

    def disjoint(self, op_a, op_b) -> bool:
        """Provably never simultaneously effective."""
        ea, eb = self.exec_expr(op_a), self.exec_expr(op_b)
        if ea is None or eb is None:
            return False
        return ea.disjoint_with(eb)

    def final_value(self, pred: PredReg) -> Optional[PredicateExpr]:
        if pred == TRUE_PRED:
            return self.universe.true()
        return self._final_env.get(pred)
