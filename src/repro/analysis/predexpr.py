"""Symbolic predicate expressions with exact truth-table evaluation.

The Elcor compiler the paper builds on has a family of "predicate cognizant"
analysis tools [JS96]. The queries those tools answer — *can these two
predicates be simultaneously true?* (disjointness), *does p imply q?*
(subset) — drive branch reordering legality, predicate-aware dependence
construction, and predicate speculation.

We answer the queries exactly for regions of bounded complexity: every
opaque boolean input (a compare result, or a predicate value flowing in at
region entry) becomes an *atom*, and each expression is a truth table over
the atoms, stored as a Python int bitmask (bit ``i`` holds the expression's
value under assignment ``i``, where atom ``j``'s value is bit ``j`` of
``i``). Boolean connectives are single int operations. Beyond
:data:`MAX_ATOMS` atoms we degrade to conservative "unknown" answers rather
than approximate ones.
"""

from __future__ import annotations

from typing import Optional


#: Tables stay exact up to this many atoms (2**16-bit ints; fast in CPython).
MAX_ATOMS = 16


class PredicateExpr:
    """An immutable boolean function over a :class:`AtomUniverse`."""

    __slots__ = ("universe", "table", "width")

    def __init__(self, universe: "AtomUniverse", table: int, width: int):
        self.universe = universe
        self.table = table
        self.width = width  # number of atoms the table currently spans

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def _extended(self, width: int) -> int:
        """Table widened to *width* atoms by duplication."""
        table = self.table
        current = self.width
        while current < width:
            table |= table << (1 << current)
            current += 1
        return table

    @staticmethod
    def _pair(a: "PredicateExpr", b: "PredicateExpr"):
        width = max(a.width, b.width)
        return a._extended(width), b._extended(width), width

    def _mask(self, width: int) -> int:
        return (1 << (1 << width)) - 1

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def __and__(self, other: "PredicateExpr") -> "PredicateExpr":
        ta, tb, width = self._pair(self, other)
        return PredicateExpr(self.universe, ta & tb, width)

    def __or__(self, other: "PredicateExpr") -> "PredicateExpr":
        ta, tb, width = self._pair(self, other)
        return PredicateExpr(self.universe, ta | tb, width)

    def __invert__(self) -> "PredicateExpr":
        return PredicateExpr(
            self.universe, ~self.table & self._mask(self.width), self.width
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_false(self) -> bool:
        return self.table == 0

    def is_true(self) -> bool:
        return self.table == self._mask(self.width)

    def disjoint_with(self, other: "PredicateExpr") -> bool:
        ta, tb, _ = self._pair(self, other)
        return (ta & tb) == 0

    def implies(self, other: "PredicateExpr") -> bool:
        ta, tb, _ = self._pair(self, other)
        return (ta & ~tb) == 0

    def equivalent_to(self, other: "PredicateExpr") -> bool:
        ta, tb, _ = self._pair(self, other)
        return ta == tb

    def __repr__(self):
        if self.is_true():
            return "<expr TRUE>"
        if self.is_false():
            return "<expr FALSE>"
        return f"<expr width={self.width} table={self.table:#x}>"


class AtomUniverse:
    """Allocates atoms and builds expressions over them.

    One universe serves one analysis region (typically one block). When atom
    allocation exceeds :data:`MAX_ATOMS` the universe is *saturated*:
    :meth:`atom` returns None and clients must fall back to conservative
    answers (see :class:`MaybeExpr` helpers below).
    """

    def __init__(self, max_atoms: int = MAX_ATOMS):
        self.max_atoms = max_atoms
        self.count = 0
        self.saturated = False

    # ------------------------------------------------------------------
    # Expression constructors
    # ------------------------------------------------------------------
    def true(self) -> PredicateExpr:
        # Width 0 means a 1-row table (no atoms); row value 1 is TRUE.
        return PredicateExpr(self, 1, 0)

    def false(self) -> PredicateExpr:
        return PredicateExpr(self, 0, 0)

    def constant(self, value: bool) -> PredicateExpr:
        return self.true() if value else self.false()

    def atom(self) -> Optional[PredicateExpr]:
        """A fresh independent boolean variable, or None when saturated."""
        if self.count >= self.max_atoms:
            self.saturated = True
            return None
        index = self.count
        self.count += 1
        width = index + 1
        # Atom index's table: bit i set iff bit `index` of i is set.
        period = 1 << index
        block = ((1 << period) - 1) << period  # 'period' zeros then ones
        table = 0
        for chunk in range(1 << (width - index - 1)):
            table |= block << (chunk * 2 * period)
        return PredicateExpr(self, table, width)


def conservative_disjoint(
    a: Optional[PredicateExpr], b: Optional[PredicateExpr]
) -> bool:
    """Disjointness with unknown handling: unknown means 'cannot prove'."""
    if a is None or b is None:
        return False
    return a.disjoint_with(b)


def conservative_implies(
    a: Optional[PredicateExpr], b: Optional[PredicateExpr]
) -> bool:
    if a is None or b is None:
        return False
    return a.implies(b)
