"""Symbolic memory disambiguation via linear address forms.

Unrolled kernels address memory as ``base + index + constant``; without
disambiguation every store to an array serializes behind the previous one
and the schedules the paper relies on are unattainable. This module
resolves each memory operand, through the block's def-use chains, into a
*linear form*: a mapping ``symbol -> coefficient`` plus a constant, where a
symbol is either a block input register or the operation that produced an
unanalyzable value. Two accesses with identical symbol parts and different
constants provably never alias; identical constants always alias; anything
else stays conservative.

Soundness: symbols represent fixed (per block execution) values, so equal
symbol parts mean the addresses differ exactly by the constant difference.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.defuse import DefUseChains
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Label, Reg

#: A linear form: (immutable symbol->coefficient part, constant part).
LinearForm = Tuple[Tuple, int]

_MAX_DEPTH = 16


class AddressResolver:
    """Resolves memory-operand addresses of one block to linear forms."""

    def __init__(self, block: Block, chains: Optional[DefUseChains] = None):
        self.block = block
        self.chains = chains or DefUseChains.build(block)
        self._cache: Dict = {}

    # ------------------------------------------------------------------
    def form_for(self, index: int, operand) -> LinearForm:
        """Linear form of *operand* as read by the op at *index*."""
        terms: Dict = {}
        const = self._accumulate(index, operand, 1, terms, _MAX_DEPTH)
        clean = tuple(
            sorted((sym, coef) for sym, coef in terms.items() if coef)
        )
        return clean, const

    def _accumulate(self, index, operand, scale, terms, depth) -> int:
        """Add ``scale * operand`` into *terms*; returns the constant part."""
        if isinstance(operand, Imm) and isinstance(operand.value, int):
            return scale * operand.value
        if isinstance(operand, Label):
            _bump(terms, ("label", operand.name), scale)
            return 0
        if not isinstance(operand, Reg) or depth <= 0:
            _bump(terms, ("opaque", id(operand)), scale)
            return 0

        definition = self.chains.reaching_def(index, operand)
        if definition is None:
            # Block input (or ambiguous): the register itself is a symbol.
            _bump(terms, ("entry", operand), scale)
            return 0
        def_index = self._position(definition)
        if def_index is None:
            _bump(terms, ("entry", operand), scale)
            return 0
        if definition.is_guarded:
            # A guarded producer may have been nullified; its destination
            # still names a consistent per-execution value (the definition
            # is the unique reaching one), but we must not decompose it.
            _bump(terms, ("def", definition.uid), scale)
            return 0

        opcode = definition.opcode
        srcs = definition.srcs
        if opcode is Opcode.MOV:
            return self._accumulate(
                def_index, srcs[0], scale, terms, depth - 1
            )
        if opcode is Opcode.ADD:
            c1 = self._accumulate(def_index, srcs[0], scale, terms, depth - 1)
            c2 = self._accumulate(def_index, srcs[1], scale, terms, depth - 1)
            return c1 + c2
        if opcode is Opcode.SUB:
            c1 = self._accumulate(def_index, srcs[0], scale, terms, depth - 1)
            c2 = self._accumulate(
                def_index, srcs[1], -scale, terms, depth - 1
            )
            return c1 + c2
        if opcode is Opcode.MUL:
            factor = _const_of(srcs[0]) or _const_of(srcs[1])
            if factor is not None:
                other = srcs[1] if _const_of(srcs[0]) else srcs[0]
                return self._accumulate(
                    def_index, other, scale * factor, terms, depth - 1
                )
        if opcode is Opcode.SHL:
            factor = _const_of(srcs[1])
            if factor is not None and 0 <= factor < 31:
                return self._accumulate(
                    def_index, srcs[0], scale * (1 << factor), terms,
                    depth - 1,
                )
        # Unanalyzable producer: its result is an opaque symbol.
        _bump(terms, ("def", definition.uid), scale)
        return 0

    def _position(self, op) -> Optional[int]:
        cache = self._cache.get("positions")
        if cache is None:
            cache = {o.uid: i for i, o in enumerate(self.block.ops)}
            self._cache["positions"] = cache
        return cache.get(op.uid)


def _bump(terms: Dict, symbol, scale: int):
    terms[symbol] = terms.get(symbol, 0) + scale


def _const_of(operand) -> Optional[int]:
    if isinstance(operand, Imm) and isinstance(operand.value, int):
        return operand.value
    return None


def may_alias_forms(a: LinearForm, b: LinearForm) -> bool:
    """Conservative alias test between two resolved address forms."""
    terms_a, const_a = a
    terms_b, const_b = b
    if terms_a == terms_b:
        return const_a == const_b
    return True
