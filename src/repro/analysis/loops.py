"""Natural loop detection via back edges of the dominator tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import ControlFlowGraph
from repro.ir.operands import Label
from repro.ir.procedure import Procedure


@dataclass
class Loop:
    """A natural loop: header plus the body block set."""

    header: Label
    body: Set[Label] = field(default_factory=set)
    back_edges: List[Label] = field(default_factory=list)  # latch blocks

    def __contains__(self, label: Label) -> bool:
        return label in self.body

    @property
    def is_self_loop(self) -> bool:
        return self.body == {self.header}


def find_loops(proc: Procedure) -> List[Loop]:
    """All natural loops, one per header (merged bodies), outermost first."""
    cfg = ControlFlowGraph(proc)
    dom = DominatorTree(cfg)
    reachable = cfg.reachable()
    loops = {}
    for edge in cfg.edges:
        if edge.src not in reachable:
            continue
        if dom.dominates(edge.dst, edge.src):
            loop = loops.setdefault(
                edge.dst, Loop(header=edge.dst, body={edge.dst})
            )
            loop.back_edges.append(edge.src)
            _collect_body(cfg, loop, edge.src)
    ordered = sorted(loops.values(), key=lambda lp: len(lp.body), reverse=True)
    return ordered


def _collect_body(cfg: ControlFlowGraph, loop: Loop, latch: Label):
    stack = [latch]
    while stack:
        label = stack.pop()
        if label in loop.body:
            continue
        loop.body.add(label)
        stack.extend(cfg.predecessors(label))
