"""Semantic IR sanitizers: the correctness net behind ``--sanitize``.

The structural verifier (:mod:`repro.ir.verify`) checks labels and
branch shapes; this package checks *meaning* — definitions reaching
uses under implying predicates, CPR's wired-OR invariant, exit
ordering, on-trace growth, profile flow conservation, and schedule
legality. Findings are structured (:class:`Finding`) so the pass
manager can turn them into incidents and the delta-debugging reducer
(:mod:`repro.reduce`) can shrink whatever triggered them.
"""

from repro.sanitize.battery import (
    GROWTH_CHECKED_PASSES,
    TIERS,
    format_findings,
    run_battery,
    sanitize_procedure,
)
from repro.sanitize.cprlint import (
    CPR_INSERTED_TAGS,
    exit_ordering_findings,
    growth_findings,
    wired_or_findings,
)
from repro.sanitize.defuse import def_before_use_findings
from repro.sanitize.findings import Finding
from repro.sanitize.profilecheck import profile_findings
from repro.sanitize.schedcheck import schedule_findings

__all__ = [
    "CPR_INSERTED_TAGS",
    "Finding",
    "GROWTH_CHECKED_PASSES",
    "TIERS",
    "def_before_use_findings",
    "exit_ordering_findings",
    "format_findings",
    "growth_findings",
    "profile_findings",
    "run_battery",
    "sanitize_procedure",
    "schedule_findings",
    "wired_or_findings",
]
