"""Def-before-use sanitizers over registers, predicates, and BTRs.

Three layers, from absolute to refined:

1. A flow-sensitive **may-defined** forward dataflow over the CFG. A
   predicate or branch-target register read at a point where *no* path
   from entry carries a definition is an absolute violation: the
   interpreter would silently default it (False / None), which is
   exactly the shape of the clobbered-predicate miscompile the
   fault-injection harness plants. General/float registers are exempt
   from the flow-sensitive rule — workloads legitimately read
   zero-default accumulators before the first in-loop definition.
2. A weak whole-procedure rule for general/float registers: a read of a
   register with no definition *anywhere* in the procedure and not a
   parameter can never observe anything but the default.
3. A **predicate-aware** in-block refinement: a use guarded by ``p``
   needs a reaching definition under a condition implying ``p``
   (ISSUE/paper terminology). Only predicates whose first definition is
   inside the block are checked — entry-reaching definitions make the
   use conservatively covered.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.predtrack import PredicateTracker
from repro.analysis.predexpr import conservative_implies
from repro.ir.cfg import ControlFlowGraph
from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, FReg, PredReg, Reg, TRUE_PRED
from repro.ir.procedure import Procedure
from repro.sanitize.findings import Finding

#: Register classes under the strict flow-sensitive rule.
_STRICT = (PredReg, BTR)


def _may_defined_in(proc: Procedure, cfg: ControlFlowGraph) -> Dict:
    """May-defined register sets at each reachable block's entry."""
    entry_facts: Set = set(proc.params) | {TRUE_PRED}
    block_defs = {
        block.label: {
            reg for op in block.ops for reg in op.dest_registers()
        }
        for block in proc
    }
    order = cfg.reverse_postorder()
    may_in: Dict = {label: set() for label in order}
    may_in[cfg.entry] = set(entry_facts)
    changed = True
    while changed:
        changed = False
        for label in order:
            incoming = set(entry_facts) if label == cfg.entry else set()
            for pred_label in cfg.predecessors(label):
                if pred_label in may_in:
                    incoming |= may_in[pred_label]
                    incoming |= block_defs[pred_label]
            if not incoming <= may_in[label]:
                may_in[label] |= incoming
                changed = True
    return may_in


def _use_sites(op):
    """(register, kind) pairs the interpreter actually reads for *op*."""
    sites = []
    if op.guard != TRUE_PRED:
        sites.append((op.guard, "guard"))
    if op.opcode is Opcode.BRANCH:
        if isinstance(op.srcs[0], PredReg):
            sites.append((op.srcs[0], "src"))
        if len(op.srcs) > 1 and isinstance(op.srcs[1], BTR):
            sites.append((op.srcs[1], "btr"))
        return sites
    for src in op.srcs:
        if isinstance(src, (Reg, FReg, PredReg, BTR)):
            sites.append((src, "src"))
    return sites


def def_before_use_findings(proc: Procedure) -> List[Finding]:
    findings: List[Finding] = []
    if not proc.blocks:
        return findings
    cfg = ControlFlowGraph(proc)
    may_in = _may_defined_in(proc, cfg)
    blocks = {block.label: block for block in proc}

    # Weak whole-procedure rule for Reg/FReg.
    all_defs: Set = set(proc.params)
    for block in proc:
        for op in block.ops:
            all_defs.update(op.dest_registers())

    for label in cfg.reverse_postorder():
        block = blocks[label]
        defined = set(may_in[label])
        for op in block.ops:
            for reg, kind in _use_sites(op):
                if reg == TRUE_PRED:
                    continue
                name = op.opcode.name.lower()
                if isinstance(reg, _STRICT) and reg not in defined:
                    findings.append(Finding(
                        check="def-before-use",
                        proc=proc.name,
                        block=label.name,
                        detail=f"{label.name}: {name} reads "
                               f"undefined {reg}",
                        message=f"no definition of {reg} reaches this "
                                f"{kind} use on any path from entry",
                    ))
                elif isinstance(reg, (Reg, FReg)) and reg not in all_defs:
                    findings.append(Finding(
                        check="def-before-use",
                        proc=proc.name,
                        block=label.name,
                        detail=f"{label.name}: {name} reads "
                               f"never-defined {reg}",
                        message=f"{reg} has no definition anywhere in "
                                f"{proc.name} and is not a parameter",
                    ))
            defined.update(op.dest_registers())

    findings.extend(_predicate_aware_findings(proc, may_in))
    return findings


def _predicate_aware_findings(proc: Procedure, may_in) -> List[Finding]:
    """In-block refinement: use under ``p`` needs a def implying ``p``."""
    findings: List[Finding] = []
    for block in proc:
        label = block.label
        if label not in may_in:
            continue  # unreachable
        tracker = PredicateTracker(block)
        universe = tracker.universe
        true_expr = universe.true()
        # coverage[p]: condition under which p holds a written value.
        coverage: Dict[PredReg, object] = {}
        for reg in may_in[label]:
            if isinstance(reg, PredReg):
                coverage[reg] = true_expr
        for op in block.ops:
            guard_expr = tracker.guard_expr.get(op.uid)
            if op.opcode is Opcode.BRANCH and isinstance(
                op.srcs[0], PredReg
            ):
                reg = op.srcs[0]
                if reg != TRUE_PRED:
                    have = coverage.get(reg)
                    need = guard_expr
                    covered = (
                        have is not None
                        and conservative_implies(need, have)
                    )
                    if not covered and need is not None:
                        findings.append(Finding(
                            check="def-before-use",
                            proc=proc.name,
                            block=label.name,
                            detail=f"{label.name}: branch reads {reg} "
                                   f"without a covering definition",
                            message="no reaching definition under a "
                                    "condition implying the use guard",
                        ))
            # Record this op's predicate writes into the coverage map.
            for target in op.pred_targets():
                if target.action.kind == "U":
                    coverage[target.reg] = true_expr
                else:
                    # O/A-kind targets conditionally update; they only
                    # *extend* coverage when the old value was covered,
                    # which the |= below conservatively under-approximates
                    # by the guard condition.
                    prior = coverage.get(target.reg)
                    term = guard_expr
                    if prior is None:
                        coverage[target.reg] = term
                    elif term is not None:
                        coverage[target.reg] = prior | term
            if op.opcode in (Opcode.PRED_SET, Opcode.PRED_CLEAR):
                dest = op.dests[0]
                if op.guard == TRUE_PRED:
                    coverage[dest] = true_expr
                else:
                    prior = coverage.get(dest)
                    if prior is not None and guard_expr is not None:
                        coverage[dest] = prior | guard_expr
                    elif guard_expr is not None:
                        coverage[dest] = guard_expr
                continue
            for dest in op.dest_registers():
                if isinstance(dest, PredReg) and not any(
                    t.reg == dest for t in op.pred_targets()
                ):
                    if op.guard == TRUE_PRED:
                        coverage[dest] = true_expr
                    elif guard_expr is not None:
                        prior = coverage.get(dest)
                        coverage[dest] = (
                            prior | guard_expr
                            if prior is not None else guard_expr
                        )
    return findings
