"""Structured sanitizer findings.

A :class:`Finding` is one violated invariant, localized to a procedure
and block. The :meth:`Finding.signature` tuple is deliberately uid-free
— it names the check, the block label, and the operands involved — so
the same miscompile produces the same signature after cloning, delta
reduction, and a round-trip through the IR text parser. The reducer's
oracle and the repro-bundle verifier both match on signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One sanitizer violation.

    ``check``    short check name (``def-before-use``, ``cpr-wired-or``,
                 ``exit-redundant``, ``on-trace-growth``,
                 ``profile-flow``, ``sched-latency``, ``sched-resource``).
    ``proc``     procedure name.
    ``block``    block label ("" for procedure-wide findings).
    ``detail``   stable, uid-free description of the violating shape;
                 two findings with equal (check, detail) are "the same
                 bug" for reduction/reproduction purposes.
    ``message``  human-oriented elaboration (may mention counts etc.).
    """

    check: str
    proc: str
    block: str
    detail: str
    message: str = ""

    def signature(self) -> Tuple[str, str]:
        return (self.check, self.detail)

    def format(self) -> str:
        where = f"{self.proc}/{self.block}" if self.block else self.proc
        text = f"[{self.check}] {where}: {self.detail}"
        if self.message:
            text += f" ({self.message})"
        return text

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "proc": self.proc,
            "block": self.block,
            "detail": self.detail,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(**data)
