"""CPR-invariant lint: wired-OR shape, exit ordering, on-trace growth.

Re-checks the invariants the paper's correctness argument rests on,
*after* ICBM has run, independently of the transformation code:

* **Wired-OR shape** — every lookahead compare group must accumulate
  into exactly one on-trace FRP (AC action) and one off-trace FRP (ON
  action), share a single root guard, be preceded by a ``pred_set`` /
  ``pred_clear`` initialization pair, and no foreign operation may
  write either FRP (the ``pg0 & (bc1 | ... | bcn)`` shape).
* **Exit-ordering irredundancy** — no exit branch may be provably
  unreachable given the earlier exits in the same block (its residual
  taken condition, conjoined with every earlier exit's negation, must
  not be identically false unless the branch itself is dead).
* **On-trace op-count non-increase** — ICBM may add bookkeeping ops
  (lookaheads, FRP inits, the bypass pair, split clones), but net of
  those, a surviving on-trace block must not have grown.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.predtrack import PredicateTracker
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import PredReg
from repro.ir.procedure import Procedure
from repro.sanitize.findings import Finding

#: Attribute tags marking operations ICBM/full-CPR legitimately insert
#: on-trace; they are excluded from the growth accounting.
CPR_INSERTED_TAGS = (
    "cpr_lookahead", "cpr_bypass", "cpr_init", "cpr_split", "full_cpr",
)


def _is_inserted(op) -> bool:
    return any(op.attrs.get(tag) for tag in CPR_INSERTED_TAGS)


# ----------------------------------------------------------------------
# Wired-OR / wired-AND shape
# ----------------------------------------------------------------------
def wired_or_findings(proc: Procedure) -> List[Finding]:
    """Check each FRP accumulated by lookahead compares.

    An FRP is grouped by the *action kind* its lookaheads use: AC (the
    wired-AND on-trace FRP) or ON (the wired-OR off-trace FRP). DCE may
    trim the unused side in the taken variation, so a lookahead with a
    single surviving target is legal — but a target with any other
    action, a mix of actions on one FRP, a missing initialization, or a
    foreign writer is not.
    """
    findings: List[Finding] = []
    for block in proc:
        lookaheads = [
            op for op in block.ops if op.attrs.get("cpr_lookahead")
        ]
        if not lookaheads:
            continue
        label = block.label.name
        frp_groups: Dict[PredReg, Dict[str, List]] = {}
        for op in lookaheads:
            for target in op.pred_targets():
                name = target.action.name
                if name not in ("AC", "ON"):
                    findings.append(Finding(
                        check="cpr-wired-or",
                        proc=proc.name,
                        block=label,
                        detail=f"{label}: lookahead uses {name} on "
                               f"{target.reg}",
                        message="lookahead targets must be AC "
                                "(on-trace) or ON (off-trace)",
                    ))
                    continue
                group = frp_groups.setdefault(target.reg, {})
                group.setdefault(name, []).append(op)
        for frp, by_action in sorted(
            frp_groups.items(), key=lambda item: str(item[0])
        ):
            findings.extend(
                _check_frp(proc, block, frp, by_action)
            )
    return findings


#: Required initializer opcode per lookahead action kind: the wired-AND
#: FRP starts true-under-root (pred_set), the wired-OR FRP starts false.
_INIT_FOR_ACTION = {"AC": Opcode.PRED_SET, "ON": Opcode.PRED_CLEAR}


def _check_frp(proc, block, frp, by_action) -> List[Finding]:
    findings: List[Finding] = []
    label = block.label.name
    if len(by_action) > 1:
        findings.append(Finding(
            check="cpr-wired-or",
            proc=proc.name,
            block=label,
            detail=f"{label}: FRP {frp} accumulated with mixed "
                   f"actions",
            message=f"actions: {sorted(by_action)}",
        ))
        return findings
    action, ops = next(iter(by_action.items()))
    guards = {op.guard for op in ops}
    if len(guards) > 1:
        findings.append(Finding(
            check="cpr-wired-or",
            proc=proc.name,
            block=label,
            detail=f"{label}: lookahead group for {frp} mixes root "
                   f"guards",
            message=f"guards: {sorted(str(g) for g in guards)}",
        ))
    first_index = min(block.index_of(op) for op in ops)
    init_opcode = _INIT_FOR_ACTION[action]
    has_init = any(
        op.opcode is init_opcode and op.dests and op.dests[0] == frp
        for op in block.ops[:first_index]
    )
    if not has_init:
        findings.append(Finding(
            check="cpr-wired-or",
            proc=proc.name,
            block=label,
            detail=f"{label}: FRP {frp} missing "
                   f"{init_opcode.name.lower()} init before first "
                   f"lookahead",
        ))
    # No foreign writes to the FRP anywhere in the block.
    group_uids = {op.uid for op in ops}
    for op in block.ops:
        if op.uid in group_uids:
            continue
        if op.opcode is init_opcode and op.dests and op.dests[0] == frp:
            continue
        if frp in set(op.dest_registers()):
            findings.append(Finding(
                check="cpr-wired-or",
                proc=proc.name,
                block=label,
                detail=f"{label}: foreign {op.opcode.name.lower()} "
                       f"writes FRP {frp}",
                message="only the init and the group's lookaheads "
                        "may write a lookahead FRP",
            ))
    return findings


# ----------------------------------------------------------------------
# Exit-ordering irredundancy
# ----------------------------------------------------------------------
def _redundant_exits(proc: Procedure) -> List[Tuple[str, str, str]]:
    """(block label, target label, source pred) of every exit branch
    whose taken condition is provably subsumed by earlier exits in its
    block (and is not itself identically false)."""
    redundant = []
    for block in proc:
        exits = block.exit_branches()
        if len(exits) < 2:
            continue
        tracker = PredicateTracker(block)
        prefix = tracker.universe.true()  # "no earlier exit taken"
        for op in exits:
            taken = tracker.taken_expr.get(op.uid)
            if taken is None or prefix is None:
                prefix = None  # saturated: stop proving anything
                continue
            if (prefix & taken).is_false() and not taken.is_false():
                target = op.branch_target()
                where = target.name if target is not None else "?"
                redundant.append(
                    (block.label.name, where, str(op.srcs[0]))
                )
            prefix = prefix & ~taken
    return redundant


def exit_ordering_findings(
    proc: Procedure, before: Procedure
) -> List[Finding]:
    """Redundant exits *introduced* relative to the pre-pass snapshot.

    Source programs may legitimately carry redundant exit chains
    (correct, merely suboptimal), so redundancy is only a miscompile
    signal when a pass created it. Suppression is by (block, target)
    pair; for blocks the pass created (tail duplicates, compensation
    blocks) any target already redundant somewhere in the snapshot is
    also suppressed, since moved or cloned branches keep their targets.
    """
    baseline = _redundant_exits(before)
    by_block = {(label, target) for label, target, _ in baseline}
    by_target = {target for _, target, _ in baseline}
    before_labels = {block.label.name for block in before}
    findings: List[Finding] = []
    for label, target, source in _redundant_exits(proc):
        if (label, target) in by_block:
            continue
        if label not in before_labels and target in by_target:
            continue
        findings.append(Finding(
            check="exit-redundant",
            proc=proc.name,
            block=label,
            detail=f"{label}: exit on {source} -> {target} is "
                   f"redundant",
            message="taken condition is subsumed by earlier exits in "
                    "the block",
        ))
    return findings


# ----------------------------------------------------------------------
# On-trace op-count non-increase
# ----------------------------------------------------------------------
def _organic_op_count(block: Block) -> int:
    return sum(1 for op in block.ops if not _is_inserted(op))


def growth_findings(proc: Procedure, before: Procedure) -> List[Finding]:
    """Blocks surviving ICBM (same label before and after) must not have
    grown, net of tagged bookkeeping insertions."""
    findings: List[Finding] = []
    before_counts = {
        block.label: len(block.ops) for block in before
    }
    for block in proc:
        if block.label not in before_counts:
            continue  # new (compensation) block: off-trace by design
        organic = _organic_op_count(block)
        original = before_counts[block.label]
        if organic > original:
            findings.append(Finding(
                check="on-trace-growth",
                proc=proc.name,
                block=block.label.name,
                detail=f"{block.label.name}: on-trace op count grew",
                message=f"{organic} organic ops after ICBM vs "
                        f"{original} before (bookkeeping excluded)",
            ))
    return findings
