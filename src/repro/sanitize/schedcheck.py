"""Schedule-legality checker: independent re-validation of schedules.

Re-derives the dependence graph and resource table for every block and
checks the scheduler's output against them — placements must respect
every dependence edge's latency and never oversubscribe a functional
unit class or the issue width in any cycle. The checker shares no state
with the list scheduler's placement loop, so a scheduler bug (or a
hand-edited schedule) is caught rather than reproduced.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.analysis.dependence import DependenceGraph
from repro.analysis.liveness import LivenessAnalysis
from repro.ir.procedure import Program
from repro.machine.processor import ProcessorConfig
from repro.sanitize.findings import Finding
from repro.sched.list_scheduler import schedule_block


def schedule_findings(
    program: Program, processor: ProcessorConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for proc in program.procedures.values():
        liveness = LivenessAnalysis(proc)
        for block in proc:
            findings.extend(
                _check_block(proc, block, processor, liveness)
            )
    return findings


def _check_block(proc, block, processor, liveness) -> List[Finding]:
    findings: List[Finding] = []
    label = block.label.name
    latencies = processor.latencies
    graph = DependenceGraph(block, latencies, liveness=liveness)
    schedule = schedule_block(block, processor, graph=graph)
    ops = graph.ops

    missing = [op for op in ops if op.uid not in schedule.cycles]
    for op in missing:
        findings.append(Finding(
            check="sched-resource",
            proc=proc.name,
            block=label,
            detail=f"{label}: {op.opcode.name.lower()} left unplaced",
        ))
    if missing:
        return findings

    # Latency legality: every dependence edge must have elapsed.
    for edge in graph.edges:
        src, dst = ops[edge.src], ops[edge.dst]
        issued = schedule.cycles[src.uid]
        needed = issued + edge.latency
        if schedule.cycles[dst.uid] < needed:
            findings.append(Finding(
                check="sched-latency",
                proc=proc.name,
                block=label,
                detail=f"{label}: {dst.opcode.name.lower()} issues "
                       f"before its {edge.kind} dependence on "
                       f"{src.opcode.name.lower()} resolves",
                message=f"issued at cycle {schedule.cycles[dst.uid]}, "
                        f"legal from {needed}",
            ))

    # Resource legality: per-cycle unit usage and total issue width.
    unit_counts = processor.unit_counts
    by_cycle: Counter = Counter()
    unit_by_cycle: Counter = Counter()
    for op in ops:
        cycle = schedule.cycles[op.uid]
        by_cycle[cycle] += 1
        unit_by_cycle[(cycle, op.opcode.unit_class())] += 1
    if processor.issue_width is not None:
        for cycle, used in sorted(by_cycle.items()):
            if used > processor.issue_width:
                findings.append(Finding(
                    check="sched-resource",
                    proc=proc.name,
                    block=label,
                    detail=f"{label}: issue width exceeded",
                    message=f"{used} ops in cycle {cycle}, width "
                            f"{processor.issue_width}",
                ))
    for (cycle, unit), used in sorted(unit_by_cycle.items()):
        capacity = unit_counts.get(unit)
        if capacity is not None and used > capacity:
            findings.append(Finding(
                check="sched-resource",
                proc=proc.name,
                block=label,
                detail=f"{label}: unit class {unit} oversubscribed",
                message=f"{used} ops in cycle {cycle}, {capacity} "
                        f"units",
            ))
    return findings
