"""The sanitizer battery front-end: run checks, raise on findings.

Two tiers:

* ``fast`` — per-procedure IR-local checks, cheap enough to run inside
  every pass transaction: def-before-use (flow-sensitive and
  predicate-aware), the CPR wired-OR lint, exit-ordering irredundancy,
  and (when the transaction provides a pre-pass snapshot of an ICBM
  run) on-trace op-count non-increase.
* ``full`` — everything in ``fast``, plus the whole-program checks the
  pipeline runs where the needed context exists: CFG/profile flow
  conservation after each profiling run and schedule legality on the
  final programs. Those live in :func:`profile_findings` and
  :func:`schedule_findings` and are invoked from ``repro.pipeline``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SanitizerError
from repro.ir.procedure import Procedure
from repro.sanitize.cprlint import (
    exit_ordering_findings,
    growth_findings,
    wired_or_findings,
)
from repro.sanitize.defuse import def_before_use_findings
from repro.sanitize.findings import Finding

TIERS = ("fast", "full")

#: Passes whose transactions are subject to the on-trace growth check.
GROWTH_CHECKED_PASSES = ("icbm",)


def run_battery(
    proc: Procedure,
    tier: str = "fast",
    before: Optional[Procedure] = None,
    pass_name: str = "",
) -> List[Finding]:
    """All findings for *proc*; *before* enables the growth check."""
    if tier not in TIERS:
        raise ValueError(f"unknown sanitize tier {tier!r}")
    findings: List[Finding] = []
    findings.extend(def_before_use_findings(proc))
    findings.extend(wired_or_findings(proc))
    if before is not None:
        # Differential checks need the pre-pass snapshot; standalone
        # battery runs (reducer oracle, final program audit) skip them.
        findings.extend(exit_ordering_findings(proc, before))
        if any(name in pass_name for name in GROWTH_CHECKED_PASSES):
            findings.extend(growth_findings(proc, before))
    return findings


def sanitize_procedure(
    proc: Procedure,
    tier: str = "fast",
    before: Optional[Procedure] = None,
    pass_name: str = "",
) -> None:
    """Raise :class:`SanitizerError` when the battery finds anything."""
    findings = run_battery(proc, tier=tier, before=before,
                           pass_name=pass_name)
    if findings:
        raise SanitizerError(format_findings(findings), findings)


def format_findings(findings: List[Finding]) -> str:
    summary = "; ".join(f.format() for f in findings[:4])
    if len(findings) > 4:
        summary += f" ... ({len(findings)} findings total)"
    return summary
