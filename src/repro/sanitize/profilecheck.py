"""CFG/profile consistency: flow conservation between counters.

The profiler counts block entries, op executions, and branch outcomes
independently; on a correct (program, profile) pair they must conserve
flow:

* a branch cannot execute more often than control reached it — its
  ``taken + not_taken`` is bounded by the block's entry count minus
  every earlier exit's taken count;
* a terminating ``jump`` must execute exactly as often as the flow
  remaining after the side exits;
* every non-entry block's entry count must equal the flow its
  predecessors send it (branch taken counts, jump executions, and
  fall-through remainders).

Entry blocks are excluded from the inflow equation (calls and the
initial transfer enter there), and procedures never profiled (zero
entries everywhere) trivially conserve.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.opcodes import Opcode
from repro.ir.procedure import Program
from repro.sanitize.findings import Finding


def profile_findings(program: Program, profile) -> List[Finding]:
    findings: List[Finding] = []
    for proc in program.procedures.values():
        findings.extend(_check_procedure(proc, profile))
    return findings


def _check_procedure(proc, profile) -> List[Finding]:
    findings: List[Finding] = []
    inflow: Dict = {}  # label -> flow sent by predecessors

    def add_flow(target, amount):
        if target is not None and amount:
            inflow[target] = inflow.get(target, 0) + amount

    for block in proc:
        label = block.label.name
        entry = profile.block_count(proc.name, block.label)
        remaining = entry
        for op in block.ops:
            if op.opcode is not Opcode.BRANCH:
                continue
            bp = profile.branch_profile(proc.name, op)
            if bp.executed > remaining:
                target = op.branch_target()
                where = target.name if target is not None else "?"
                findings.append(Finding(
                    check="profile-flow",
                    proc=proc.name,
                    block=label,
                    detail=f"{label}: branch -> {where} over-executes",
                    message=f"executed {bp.executed} times but only "
                            f"{remaining} entries remain after earlier "
                            f"exits",
                ))
                remaining = 0
                continue
            add_flow(op.branch_target(), bp.taken)
            remaining -= bp.taken
        terminator = block.terminator()
        if terminator is None:
            add_flow(block.fallthrough, remaining)
        elif terminator.opcode is Opcode.JUMP:
            executed = profile.op_count(proc.name, terminator)
            if executed != remaining:
                findings.append(Finding(
                    check="profile-flow",
                    proc=proc.name,
                    block=label,
                    detail=f"{label}: jump count disagrees with "
                           f"remaining flow",
                    message=f"jump executed {executed} times, "
                            f"{remaining} entries remained",
                ))
            add_flow(terminator.branch_target(), executed)
        # RETURN: flow leaves the procedure.

    entry_label = proc.entry.label if proc.blocks else None
    for block in proc:
        if block.label == entry_label:
            continue
        expected = inflow.get(block.label, 0)
        entry = profile.block_count(proc.name, block.label)
        if entry != expected:
            findings.append(Finding(
                check="profile-flow",
                proc=proc.name,
                block=block.label.name,
                detail=f"{block.label.name}: entry count breaks flow "
                       f"conservation",
                message=f"counted {entry} entries, predecessors sent "
                        f"{expected}",
            ))
    return findings
