"""Transactional pass manager: per-procedure rollback with incident capture.

The paper's schema is explicitly a *safe* transformation — wherever control
CPR is not applied, the unoptimized code ships. The pass manager generalizes
that fallback discipline to the whole pipeline: every optimization pass runs
as a per-procedure *transaction*:

1. **snapshot** the procedure (uid-preserving deep clone, so profile side
   tables stay valid after a rollback);
2. **run** the pass — optionally wrapped by a fault-injection plan and
   bounded by a step budget;
3. **re-verify** IR well-formedness and, when configured, differentially
   check observable behaviour against a pre-pass reference run;
4. on any :class:`~repro.errors.ReproError`, **roll back** to the snapshot
   and either try the next rung of a degradation ladder or record a
   structured :class:`~repro.passes.incidents.Incident` and move on.

A failing pass therefore degrades *performance* on one procedure, never
*correctness* of the build. In ``resilient=False`` (strict) mode the manager
propagates the first failure unchanged, reproducing the historical
all-or-nothing behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import (
    BudgetExceeded,
    ReproError,
    SanitizerError,
    TransformError,
)
from repro.ir.cloning import (
    adopt_procedure,
    restore_procedure,
    snapshot_procedure,
)
from repro.ir.procedure import Procedure, Program
from repro.ir.verify import verify_procedure
from repro.obs import activate_ledger, record_counter, trace_span
from repro.passes.incidents import (
    ACTION_DEGRADED,
    ACTION_FLAGGED,
    ACTION_ROLLED_BACK,
    BuildReport,
    Incident,
)
from repro.sanitize.battery import format_findings, run_battery
from repro.sim.interpreter import (
    DEFAULT_FUEL,
    _resolve_engine,
    make_interpreter,
)

#: Sentinel distinguishing "transaction failed on every rung" from a pass
#: that legitimately returned ``None``.
_FAILED = object()


def run_inputs(program: Program, inputs, entry: str, fuel: int) -> List:
    """Execute *program* on each input; return the observable results.

    Each input is ``None`` (no setup), a callable ``setup(interp)`` that may
    return the argument tuple, or a ``(setup, args)`` pair — the same input
    protocol as :func:`repro.sim.profiler.profile_program`.
    """
    results = []
    engine = _resolve_engine(None)
    lowering = None
    if engine == "soa":
        from repro.sim.soa import ProgramLowering

        lowering = ProgramLowering(program)
    for item in inputs:
        interp = make_interpreter(
            program, fuel=fuel, engine=engine, lowering=lowering
        )
        args = ()
        if item is not None:
            if callable(item):
                returned = item(interp)
                if returned is not None:
                    args = tuple(returned)
            else:
                setup, args = item
                if setup is not None:
                    setup(interp)
        results.append(interp.run(entry=entry, args=args))
    return results


def check_equivalent(reference: List, rebuilt: List, stage: str):
    """Raise :class:`TransformError` when observable behaviour diverged.

    The message localizes the divergence: differing return values, differing
    trace lengths, and the *first mismatching store* (index plus both
    (address, value) pairs), so rollback tests and incident records can
    pinpoint what a broken transformation actually changed.
    """
    for index, (before, after) in enumerate(zip(reference, rebuilt)):
        if before.equivalent_to(after):
            continue
        details = []
        if before.return_value != after.return_value:
            details.append(
                f"return {before.return_value} -> {after.return_value}"
            )
        if before.store_trace != after.store_trace:
            expected, actual = before.store_trace, after.store_trace
            if len(expected) != len(actual):
                details.append(f"{len(expected)} -> {len(actual)} stores")
            position = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(expected, actual))
                    if a != b
                ),
                min(len(expected), len(actual)),
            )
            want = (
                expected[position]
                if position < len(expected)
                else "<end of trace>"
            )
            got = (
                actual[position]
                if position < len(actual)
                else "<end of trace>"
            )
            details.append(
                f"first divergent store at index {position}: "
                f"expected {want}, got {got}"
            )
        raise TransformError(
            f"{stage} changed observable behaviour on input {index}: "
            + ", ".join(details)
        )


@dataclass
class TransactionPolicy:
    """Per-transaction safety knobs.

    * ``verify`` — re-run the IR verifier after every rung;
    * ``differential`` — re-execute the whole program after every rung and
      compare observables against the manager's reference results (requires
      the manager to have been given ``inputs`` and ``reference``);
    * ``step_budget`` — optional cap on the transformed procedure's static
      operation count; exceeding it raises :class:`BudgetExceeded` and rolls
      the transaction back.
    """

    verify: bool = True
    differential: bool = False
    step_budget: Optional[int] = None


@dataclass(frozen=True)
class Rung:
    """One step of a degradation ladder: a named pass variant."""

    name: str
    fn: Callable[[Procedure], Any]


class PassManager:
    """Runs optimization passes as per-procedure transactions."""

    def __init__(
        self,
        program: Program,
        report: Optional[BuildReport] = None,
        resilient: bool = True,
        policy: Optional[TransactionPolicy] = None,
        fault_plan=None,
        inputs=None,
        entry: str = "main",
        reference: Optional[List] = None,
        fuel: int = DEFAULT_FUEL,
        cache=None,
        metrics=None,
        context_key: Optional[str] = None,
        sanitize: Optional[str] = None,
        repro_dir: Optional[str] = None,
    ):
        self.program = program
        self.report = report if report is not None else BuildReport()
        self.resilient = resilient
        self.policy = policy or TransactionPolicy()
        self.fault_plan = fault_plan
        self.inputs = inputs
        self.entry = entry
        self.reference = reference
        self.fuel = fuel
        #: Content-addressed transaction cache (:class:`repro.farm.cache
        #: .PassCache`) plus the per-build context salt; both must be set
        #: for memoization to engage, and fault-injected builds never
        #: consult or populate the cache (their outcomes are sabotaged).
        self.cache = cache
        self.context_key = context_key
        self.metrics = metrics
        #: Transactions restored from the cache (used by the pipeline to
        #: decide when a pre-pass profile has gone stale: adopted
        #: procedures carry fresh op uids).
        self.cache_restores = 0
        #: Sanitizer tier ("fast"/"full") or None; when set, the battery
        #: runs inside every transaction check and after cache adoption.
        self.sanitize = sanitize
        #: Where reduced repro bundles land; None disables emission.
        self.repro_dir = repro_dir
        #: Profile the pipeline sets before profile-guided passes so
        #: emitted bundles can include the procedure's profile slice.
        self.bundle_profile = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_pass(
        self,
        name: str,
        fn: Optional[Callable[[Procedure], Any]] = None,
        ladder: Optional[Sequence[Rung]] = None,
        procs: Optional[Sequence[str]] = None,
        differential: Optional[bool] = None,
    ) -> Dict[str, Any]:
        """Run one pass over every procedure as independent transactions.

        Either *fn* (a single implementation) or *ladder* (an ordered
        sequence of :class:`Rung` fallbacks, most aggressive first) must be
        given. Returns ``{proc_name: rung_result}`` with entries only for
        procedures whose transaction committed; rolled-back procedures are
        absent (their IR equals the pre-pass snapshot).
        """
        if ladder is None:
            if fn is None:
                raise ValueError("run_pass needs fn or ladder")
            ladder = [Rung("full", fn)]
        results: Dict[str, Any] = {}
        names = list(procs) if procs is not None else list(
            self.program.procedures
        )
        for proc_name in names:
            outcome = self._transact(name, proc_name, ladder, differential)
            if outcome is not _FAILED:
                results[proc_name] = outcome
        return results

    # ------------------------------------------------------------------
    # The transaction
    # ------------------------------------------------------------------
    def _transact(
        self,
        pass_name: str,
        proc_name: str,
        ladder: Sequence[Rung],
        differential: Optional[bool],
    ):
        with trace_span(
            f"{pass_name}:{proc_name}", kind="transaction"
        ) as span:
            return self._transact_body(
                pass_name, proc_name, ladder, differential, span
            )

    def _transact_body(
        self,
        pass_name: str,
        proc_name: str,
        ladder: Sequence[Rung],
        differential: Optional[bool],
        span,
    ):
        proc = self.program.procedures[proc_name]
        started = time.perf_counter()
        ops_before = proc.op_count()
        span.set_attr("ops_before", ops_before)
        ledger = self.report.ledger
        txn_mark = ledger.mark()
        key = self._cache_key(pass_name, proc)
        if key is not None:
            cached = self.cache.get_transaction(key)
            if cached is not None:
                replacement, result, entries = cached
                pre_adopt = snapshot_procedure(proc)
                adopt_procedure(proc, replacement)
                findings = []
                if self.sanitize:
                    # Re-sanitize after fresh-uid adoption: a poisoned
                    # entry (corrupt pickle that still unpickles, or one
                    # written by an older battery) must not ship.
                    findings = run_battery(
                        proc,
                        tier=self.sanitize,
                        before=pre_adopt,
                        pass_name=pass_name,
                    )
                if not findings:
                    self.cache_restores += 1
                    self.report.transactions += 1
                    self.report.committed += 1
                    # Replay the committed transaction's ledger entries so
                    # a warm build reports the same decisions as a cold
                    # one (the entries are uid-free, so adoption's fresh
                    # uids don't invalidate them).
                    ledger.replay(entries)
                    record_counter(
                        "farm.cache_restore_latency_s",
                        time.perf_counter() - started,
                    )
                    span.set_attr("ops_after", proc.op_count())
                    span.set_attr("ops_delta", proc.op_count() - ops_before)
                    span.set_attr("cache", "hit")
                    self._note(
                        pass_name, started, ops_before, proc,
                        cache_hit=True,
                    )
                    return result
                # Drop the poisoned entry and fall through to a fresh
                # run from the pre-adoption state.
                restore_procedure(proc, pre_adopt)
                self.cache.drop_transaction(key)
                self.report.record(
                    Incident(
                        pass_name=pass_name,
                        proc_name=proc_name,
                        severity="warning",
                        error_type="SanitizerError",
                        message="cached transaction failed the "
                                "sanitizer after adoption; entry "
                                "dropped: "
                                + format_findings(findings),
                        action=ACTION_FLAGGED,
                    )
                )
        snapshot = snapshot_procedure(proc)
        do_differential = (
            self.policy.differential if differential is None else differential
        )
        self.report.transactions += 1
        failures = []
        corrupted = None  # (rung name, findings, corrupted clone)
        for rung in ladder:
            fn = rung.fn
            if self.fault_plan is not None:
                fn = self.fault_plan.wrap(pass_name, proc_name, fn)
            rung_mark = ledger.mark()
            try:
                with trace_span(f"rung:{rung.name}", kind="rung"), \
                        activate_ledger(ledger):
                    result = fn(proc)
                self._check(pass_name, proc, snapshot)
                if do_differential:
                    self._differential_check(pass_name, proc_name)
            except ReproError as exc:
                if not self.resilient:
                    ledger.rewind(rung_mark)
                    raise
                failures.append((rung, exc))
                if (
                    corrupted is None
                    and isinstance(exc, SanitizerError)
                    and exc.findings
                    and self.repro_dir is not None
                ):
                    # Keep the corrupted IR for the reducer before the
                    # rollback below erases it.
                    corrupted = (
                        rung.name,
                        exc.findings,
                        snapshot_procedure(proc),
                    )
                restore_procedure(proc, snapshot)
                # The ledger must only describe surviving transforms:
                # drop everything this rung recorded along with its IR.
                ledger.rewind(rung_mark)
                continue
            # Committed. A commit on a fallback rung is still an incident —
            # the build is degraded, just not incorrect.
            self.report.committed += 1
            if key is not None and not failures:
                # Only clean first-rung commits are memoized: a degraded
                # commit's incident trail is not part of the cached value,
                # and replaying it from cache would hide the degradation.
                self.cache.put_transaction(
                    key,
                    snapshot_procedure(proc),
                    result,
                    ledger.entries_since(txn_mark),
                )
            span.set_attr("ops_after", proc.op_count())
            span.set_attr("ops_delta", proc.op_count() - ops_before)
            if key is not None:
                span.set_attr("cache", "miss")
            if failures:
                span.set_attr("action", f"degraded:{rung.name}")
            self._note(
                pass_name,
                started,
                ops_before,
                proc,
                cache_hit=False if key is not None else None,
            )
            if failures:
                self.report.degraded += 1
                _, first_error = failures[0]
                self.report.record(
                    Incident(
                        pass_name=pass_name,
                        proc_name=proc_name,
                        severity="warning",
                        error_type=type(first_error).__name__,
                        message=str(first_error),
                        action=ACTION_DEGRADED,
                        rung=rung.name,
                        retries=len(failures) + 1,
                        bundle=self._emit_bundle(pass_name, corrupted),
                    )
                )
            return result
        # Every rung failed: the procedure sits at its pre-pass snapshot.
        span.set_attr("ops_after", proc.op_count())
        span.set_attr("ops_delta", proc.op_count() - ops_before)
        span.set_attr("action", "rolled-back")
        self._note(pass_name, started, ops_before, proc, cache_hit=None)
        self.report.rolled_back += 1
        last_rung, last_error = failures[-1]
        self.report.record(
            Incident(
                pass_name=pass_name,
                proc_name=proc_name,
                severity="error",
                error_type=type(last_error).__name__,
                message=str(last_error),
                action=ACTION_ROLLED_BACK,
                rung=last_rung.name,
                retries=len(failures),
                bundle=self._emit_bundle(pass_name, corrupted),
            )
        )
        return _FAILED

    def _emit_bundle(self, pass_name: str, corrupted) -> Optional[str]:
        """Minimize a sanitizer-corrupted procedure into a repro bundle."""
        if corrupted is None or self.repro_dir is None:
            return None
        from repro.reduce.bundle import reduce_and_bundle

        rung_name, findings, proc = corrupted
        return reduce_and_bundle(
            self.repro_dir,
            proc,
            findings,
            pass_name,
            rung=rung_name,
            tier=self.sanitize or "fast",
            policy=self.policy,
            profile=self.bundle_profile,
        )

    def _cache_key(self, pass_name: str, proc: Procedure) -> Optional[str]:
        """The transaction's content address, or None when caching is off.

        Fault-injected builds never use the cache: their transactions are
        deliberately sabotaged, so neither their outcomes nor the clean
        outcome they would shadow may be memoized or replayed.
        """
        if (
            self.cache is None
            or self.context_key is None
            or self.fault_plan is not None
        ):
            return None
        from repro.farm.cache import CACHE_FORMAT_VERSION
        from repro.farm.fingerprint import transaction_key

        return transaction_key(
            CACHE_FORMAT_VERSION,
            self.context_key,
            pass_name,
            proc,
            self.policy,
        )

    def _note(
        self,
        pass_name: str,
        started: float,
        ops_before: int,
        proc: Procedure,
        cache_hit,
    ):
        if self.metrics is not None:
            self.metrics.record_pass(
                pass_name,
                time.perf_counter() - started,
                ops_before,
                proc.op_count(),
                cache_hit=cache_hit,
            )

    def _check(
        self,
        pass_name: str,
        proc: Procedure,
        snapshot: Optional[Procedure] = None,
    ):
        if self.policy.verify:
            verify_procedure(proc, self.program)
        budget = self.policy.step_budget
        if budget is not None and proc.op_count() > budget:
            raise BudgetExceeded(
                f"{pass_name} grew {proc.name} to {proc.op_count()} ops "
                f"(step budget {budget})"
            )
        if self.sanitize:
            findings = run_battery(
                proc,
                tier=self.sanitize,
                before=snapshot,
                pass_name=pass_name,
            )
            if findings:
                raise SanitizerError(format_findings(findings), findings)

    def _differential_check(self, pass_name: str, proc_name: str):
        if self.reference is None or self.inputs is None:
            return
        # A safe pass never inflates the dynamic op count dramatically, so
        # bound the re-execution by a multiple of the reference run: a pass
        # that manufactured an infinite loop fails fast with FuelExhausted
        # (and rolls back) instead of burning the full default budget.
        reference_ops = max(
            (result.ops_executed for result in self.reference), default=0
        )
        fuel = min(self.fuel, 4 * reference_ops + 10_000)
        rebuilt = run_inputs(self.program, self.inputs, self.entry, fuel)
        check_equivalent(self.reference, rebuilt, f"{pass_name} on {proc_name}")
