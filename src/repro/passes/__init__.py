"""Transactional pass management: rollback, incidents, degradation ladders."""

from repro.passes.incidents import (
    ACTION_DEGRADED,
    ACTION_RESTORED_BASELINE,
    ACTION_ROLLED_BACK,
    BuildReport,
    Incident,
)
from repro.passes.manager import (
    PassManager,
    Rung,
    TransactionPolicy,
    check_equivalent,
    run_inputs,
)

__all__ = [
    "ACTION_DEGRADED",
    "ACTION_RESTORED_BASELINE",
    "ACTION_ROLLED_BACK",
    "BuildReport",
    "Incident",
    "PassManager",
    "Rung",
    "TransactionPolicy",
    "check_equivalent",
    "run_inputs",
]
