"""Structured incident records for the transactional pass manager.

Every recovered (or unrecoverable) pass failure becomes one
:class:`Incident` — a machine-readable record of *which pass* failed on
*which procedure*, with *what exception*, how many ladder rungs were
attempted, and what the manager did about it. A :class:`BuildReport`
aggregates the incidents of one workload build together with transaction
counters, so callers (pipeline, CLI, tests, a future build service) can
distinguish a clean build from a degraded-but-correct one at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.ledger import DecisionLedger

#: Incident severities, mildest first.
SEVERITIES = ("info", "warning", "error")

#: What the manager did after the transaction settled.
ACTION_DEGRADED = "degraded"          # a later ladder rung committed
ACTION_ROLLED_BACK = "rolled-back"    # every rung failed; snapshot restored
ACTION_RESTORED_BASELINE = "restored-baseline"  # stage-level fallback
ACTION_FLAGGED = "flagged"            # sanitizer finding outside a rung
#                                       (pipeline audit / cache adoption)


@dataclass
class Incident:
    """One recovered (or fatal-but-contained) pass failure."""

    pass_name: str
    proc_name: str
    severity: str
    error_type: str
    message: str
    action: str = ACTION_ROLLED_BACK
    rung: str = "full"
    retries: int = 1
    #: Path of the minimized repro bundle the reducer emitted for this
    #: incident, when ``--sanitize`` ran with a repro directory.
    bundle: Optional[str] = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        text = (
            f"[{self.severity}] {self.pass_name}/{self.proc_name}: "
            f"{self.error_type}: {self.message} "
            f"({self.action} after {self.retries} attempt(s), "
            f"rung={self.rung})"
        )
        if self.bundle:
            text += f" [bundle: {self.bundle}]"
        return text

    def to_dict(self) -> dict:
        """JSON-safe form, for cross-process incident collection."""
        return {
            "pass_name": self.pass_name,
            "proc_name": self.proc_name,
            "severity": self.severity,
            "error_type": self.error_type,
            "message": self.message,
            "action": self.action,
            "rung": self.rung,
            "retries": self.retries,
            "bundle": self.bundle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Incident":
        return cls(**data)


@dataclass
class BuildReport:
    """Incidents plus transaction counters for one workload build."""

    incidents: List[Incident] = field(default_factory=list)
    transactions: int = 0
    committed: int = 0
    degraded: int = 0
    rolled_back: int = 0
    #: The CPR decision ledger for this build — every Match accept/reject,
    #: speculation promote/demote, and restructure that survived its
    #: transaction (rolled-back rungs are rewound out; cache restores
    #: replay the committed entries). Uid-free, so it serializes
    #: bit-identically cold vs. warm and across farm workers.
    ledger: DecisionLedger = field(default_factory=DecisionLedger)

    def record(self, incident: Incident) -> Incident:
        self.incidents.append(incident)
        return incident

    def incidents_for(
        self,
        pass_name: Optional[str] = None,
        proc_name: Optional[str] = None,
    ) -> List[Incident]:
        return [
            incident
            for incident in self.incidents
            if (pass_name is None or incident.pass_name == pass_name)
            and (proc_name is None or incident.proc_name == proc_name)
        ]

    @property
    def ok(self) -> bool:
        """True when the build committed every transaction cleanly."""
        return not self.incidents

    def worst_severity(self) -> Optional[str]:
        if not self.incidents:
            return None
        return max(
            (incident.severity for incident in self.incidents),
            key=SEVERITIES.index,
        )

    def merge(self, other: "BuildReport") -> "BuildReport":
        self.incidents.extend(other.incidents)
        self.transactions += other.transactions
        self.committed += other.committed
        self.degraded += other.degraded
        self.rolled_back += other.rolled_back
        self.ledger = self.ledger.merge(other.ledger)
        return self

    def to_dict(self) -> dict:
        """JSON-safe form: counters plus every incident, in order."""
        return {
            "transactions": self.transactions,
            "committed": self.committed,
            "degraded": self.degraded,
            "rolled_back": self.rolled_back,
            "incidents": [i.to_dict() for i in self.incidents],
            "ledger": self.ledger.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BuildReport":
        report = cls(
            transactions=data.get("transactions", 0),
            committed=data.get("committed", 0),
            degraded=data.get("degraded", 0),
            rolled_back=data.get("rolled_back", 0),
        )
        for incident in data.get("incidents", []):
            report.record(Incident.from_dict(incident))
        report.ledger = DecisionLedger.from_dict(data.get("ledger", {}))
        return report

    def summary(self) -> str:
        if not self.incidents:
            return (
                f"build clean: {self.committed}/{self.transactions} "
                "pass transactions committed"
            )
        lines = [
            f"{len(self.incidents)} incident(s) across "
            f"{self.transactions} pass transactions "
            f"({self.degraded} degraded, {self.rolled_back} rolled back):"
        ]
        lines.extend("  " + incident.format() for incident in self.incidents)
        return "\n".join(lines)
