"""Static and dynamic operation counting (the paper's Table 3 metrics).

``S tot`` / ``S br``: static operation / branch counts of a program build.
``D tot`` / ``D br``: dynamic (executed) operation / branch counts under a
profile. Table 3 reports transformed-to-baseline ratios of these four.

Branch counting matches the paper's model: ``branch``, ``jump``, ``call``
and ``return`` are branch-unit operations; ``pbr`` is not (it is the
prepare-to-branch helper op and counts only toward the totals).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.procedure import Program
from repro.sim.profiler import ProfileData


@dataclass
class OperationCounts:
    static_total: int = 0
    static_branches: int = 0
    dynamic_total: int = 0
    dynamic_branches: int = 0

    def ratios_against(self, baseline: "OperationCounts"):
        """(S tot, S br, D tot, D br) ratios, transformed / baseline."""

        def ratio(a, b):
            return a / b if b else float("nan")

        return (
            ratio(self.static_total, baseline.static_total),
            ratio(self.static_branches, baseline.static_branches),
            ratio(self.dynamic_total, baseline.dynamic_total),
            ratio(self.dynamic_branches, baseline.dynamic_branches),
        )


def operation_counts(
    program: Program, profile: ProfileData
) -> OperationCounts:
    counts = OperationCounts()
    for proc in program.procedures.values():
        for block in proc.blocks:
            for op in block.ops:
                executed = profile.op_count(proc.name, op)
                counts.static_total += 1
                counts.dynamic_total += executed
                if op.is_branch:
                    counts.static_branches += 1
                    counts.dynamic_branches += executed
    return counts
