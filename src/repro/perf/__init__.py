"""Performance estimation (the paper's Section 7 methodology)."""

from repro.perf.estimator import (
    CycleEstimate,
    estimate_procedure_cycles,
    estimate_program_cycles,
)
from repro.perf.counts import operation_counts, OperationCounts
from repro.perf.report import (
    Table2,
    Table3,
    WorkloadResult,
    build_table2,
    build_table3,
    evaluate_workload,
    geometric_mean,
)

__all__ = [
    "CycleEstimate",
    "OperationCounts",
    "Table2",
    "Table3",
    "WorkloadResult",
    "build_table2",
    "build_table3",
    "estimate_procedure_cycles",
    "estimate_program_cycles",
    "evaluate_workload",
    "geometric_mean",
    "operation_counts",
]
