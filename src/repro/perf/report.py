"""Experiment drivers: regenerate the paper's Table 2 and Table 3.

:func:`evaluate_workload` runs the full two-build methodology for one
workload and collects per-processor cycle estimates plus operation counts;
:func:`build_table2` / :func:`build_table3` aggregate those results into
the paper's tables, including the SPEC-95 and overall geometric means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import CPRConfig
from repro.machine.processor import PAPER_PROCESSORS, ProcessorConfig
from repro.obs import activate_ledger, trace_span
from repro.perf.counts import OperationCounts, operation_counts
from repro.perf.estimator import estimate_program_cycles_multi
from repro.pipeline import PipelineOptions, WorkloadBuild, build_workload
from repro.workloads.base import Workload


@dataclass
class WorkloadResult:
    """Everything measured for one workload."""

    name: str
    category: str
    build: WorkloadBuild
    baseline_cycles: Dict[str, float] = field(default_factory=dict)
    transformed_cycles: Dict[str, float] = field(default_factory=dict)
    baseline_counts: Optional[OperationCounts] = None
    transformed_counts: Optional[OperationCounts] = None

    def speedup(self, processor_name: str) -> float:
        transformed = self.transformed_cycles[processor_name]
        if transformed == 0:
            return float("nan")
        return self.baseline_cycles[processor_name] / transformed

    def count_ratios(self):
        """(S tot, S br, D tot, D br) transformed/baseline ratios."""
        return self.transformed_counts.ratios_against(self.baseline_counts)


def measure_build(
    build: WorkloadBuild,
    category: str = "util",
    processors: Sequence[ProcessorConfig] = PAPER_PROCESSORS,
    estimate_mode: str = "exit-aware",
) -> WorkloadResult:
    """Measure an already-completed build on the given processors."""
    result = WorkloadResult(
        name=build.name, category=category, build=build
    )
    # Estimator clamp warnings land in the build's decision ledger (the
    # estimator dedups them itself: one entry per clamped exit, not one
    # per processor configuration).
    with trace_span(f"measure:{build.name}", kind="phase"), \
            activate_ledger(build.build_report.ledger):
        # One multi-machine estimate per program: machines sharing a
        # latency model share one scheduling lowering per block (the SoA
        # engine), instead of five independent schedule passes.
        baseline_estimates = estimate_program_cycles_multi(
            build.baseline, processors, build.baseline_profile,
            mode=estimate_mode,
        )
        transformed_estimates = estimate_program_cycles_multi(
            build.transformed, processors, build.transformed_profile,
            mode=estimate_mode,
        )
        for processor in processors:
            result.baseline_cycles[processor.name] = (
                baseline_estimates[processor.name].total
            )
            result.transformed_cycles[processor.name] = (
                transformed_estimates[processor.name].total
            )
        result.baseline_counts = operation_counts(
            build.baseline, build.baseline_profile
        )
        result.transformed_counts = operation_counts(
            build.transformed, build.transformed_profile
        )
    return result


def evaluate_workload(
    workload: Workload,
    processors: Sequence[ProcessorConfig] = PAPER_PROCESSORS,
    options: Optional[PipelineOptions] = None,
    estimate_mode: str = "exit-aware",
    cache=None,
    metrics=None,
    inputs_key=None,
) -> WorkloadResult:
    """Build baseline + height-reduced code and measure both."""
    build = build_workload(
        workload.name, workload.compile(), workload.inputs,
        options, entry=workload.entry,
        cache=cache, metrics=metrics, inputs_key=inputs_key,
    )
    return measure_build(
        build,
        category=workload.category,
        processors=processors,
        estimate_mode=estimate_mode,
    )


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ----------------------------------------------------------------------
# Table 2: speedups per benchmark x processor
# ----------------------------------------------------------------------
@dataclass
class Table2:
    """The paper's Table 2: ICBM speedup per benchmark and machine."""

    processors: List[str]
    rows: List[WorkloadResult]

    def speedups(self, result: WorkloadResult) -> List[float]:
        return [result.speedup(p) for p in self.processors]

    def gmean_row(self, category: Optional[str] = None) -> List[float]:
        rows = [
            r for r in self.rows
            if category is None or r.category == category
        ]
        return [
            geometric_mean(r.speedup(p) for r in rows)
            for p in self.processors
        ]

    def render(self) -> str:
        headers = ["Benchmark", "Seq", "Nar", "Med", "Wid", "Inf"]
        lines = [_format_row(headers)]
        lines.append("-" * len(lines[0]))
        for result in self.rows:
            cells = [result.name] + [
                f"{s:.2f}" for s in self.speedups(result)
            ]
            lines.append(_format_row(cells))
        lines.append("-" * len(lines[0]))
        spec95 = self.gmean_row("spec95")
        overall = self.gmean_row(None)
        lines.append(
            _format_row(["Gmean-spec95"] + [f"{v:.2f}" for v in spec95])
        )
        lines.append(
            _format_row(["Gmean-all"] + [f"{v:.2f}" for v in overall])
        )
        return "\n".join(lines)


def build_table2(
    workloads: Sequence[Workload],
    processors: Sequence[ProcessorConfig] = PAPER_PROCESSORS,
    options: Optional[PipelineOptions] = None,
    estimate_mode: str = "exit-aware",
) -> Table2:
    rows = [
        evaluate_workload(w, processors, options, estimate_mode)
        for w in workloads
    ]
    return Table2(
        processors=[p.name for p in processors], rows=rows
    )


# ----------------------------------------------------------------------
# Table 3: static/dynamic operation count ratios (medium processor)
# ----------------------------------------------------------------------
@dataclass
class Table3:
    """The paper's Table 3: operation-count ratios, transformed/baseline."""

    rows: List[WorkloadResult]

    def gmean_row(self, category: Optional[str] = None) -> List[float]:
        rows = [
            r for r in self.rows
            if category is None or r.category == category
        ]
        columns = list(zip(*(r.count_ratios() for r in rows)))
        return [geometric_mean(col) for col in columns]

    def render(self) -> str:
        headers = ["Benchmark", "S tot", "S br", "D tot", "D br"]
        lines = [_format_row(headers)]
        lines.append("-" * len(lines[0]))
        for result in self.rows:
            ratios = result.count_ratios()
            lines.append(
                _format_row(
                    [result.name] + [f"{v:.2f}" for v in ratios]
                )
            )
        lines.append("-" * len(lines[0]))
        lines.append(
            _format_row(
                ["Gmean-spec95"]
                + [f"{v:.2f}" for v in self.gmean_row("spec95")]
            )
        )
        lines.append(
            _format_row(
                ["Gmean-all"] + [f"{v:.2f}" for v in self.gmean_row(None)]
            )
        )
        return "\n".join(lines)


def build_table3(
    workloads: Sequence[Workload],
    options: Optional[PipelineOptions] = None,
) -> Table3:
    """Table 3 only needs the builds and profiles (counts are
    machine-independent); we evaluate with the medium processor alone to
    match the paper's presentation."""
    from repro.machine.processor import MEDIUM

    rows = [
        evaluate_workload(w, [MEDIUM], options) for w in workloads
    ]
    return Table3(rows=rows)


def _format_row(cells: List[str]) -> str:
    widths = [14, 7, 7, 7, 7, 7][: len(cells)]
    return "  ".join(
        cell.ljust(width) for cell, width in zip(cells, widths)
    )
