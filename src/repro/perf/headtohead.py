"""Head-to-head comparison of the rival branch-elimination backends.

One shared baseline per workload (built once with the full classical
pipeline), then every backend transforms *that* baseline, so the table
isolates what each backend adds over identical input. Per workload and
backend the table reports, on the medium machine:

* **speedup** — estimated baseline cycles over transformed cycles;
* **S br / D br** — static and dynamic branch-count ratios,
  transformed over baseline (the paper's Table 3 columns);
* **S tot** — static operation-count ratio, i.e. code growth;
* **sched** — total transformed schedule length in cycles.

Geometric-mean rows aggregate each backend across the corpus. The same
machinery measures the registry workloads (``compare_workloads``) and a
fuzz corpus (``compare_corpus``) — the head-to-head over generated
programs is how the differential fuzzer's coverage is demonstrated to
actually exercise all three backends, not just compile under them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.machine.processor import MEDIUM, ProcessorConfig
from repro.perf.counts import operation_counts
from repro.perf.estimator import estimate_program_cycles
from repro.perf.report import geometric_mean
from repro.pipeline import (
    BACKENDS,
    PipelineOptions,
    apply_backend,
    build_baseline,
)
from repro.workloads.base import Workload


@dataclass
class BackendMeasurement:
    """One backend's transformed build measured against the baseline."""

    backend: str
    speedup: float
    static_ratio: float
    static_branch_ratio: float
    dynamic_branch_ratio: float
    schedule_cycles: float
    #: Backend-specific counters (melded diamonds, CPR blocks, ...).
    detail: Dict[str, int] = field(default_factory=dict)


@dataclass
class WorkloadComparison:
    """All backends' measurements over one shared baseline."""

    name: str
    category: str
    baseline_cycles: float
    measurements: Dict[str, BackendMeasurement] = field(
        default_factory=dict
    )
    error: Optional[str] = None


@dataclass
class HeadToHead:
    """The corpus-level comparison table."""

    backends: List[str]
    rows: List[WorkloadComparison] = field(default_factory=list)

    def gmean(self, backend: str, attr: str) -> float:
        return geometric_mean(
            getattr(row.measurements[backend], attr)
            for row in self.rows
            if backend in row.measurements
        )

    def render(self) -> str:
        header = _row(
            ["Workload", "Backend", "Speedup", "S tot", "S br",
             "D br", "Sched", "Notes"]
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            if row.error is not None:
                lines.append(_row([row.name, "-", "error:", row.error]))
                continue
            for backend in self.backends:
                m = row.measurements.get(backend)
                if m is None:
                    continue
                notes = " ".join(
                    f"{k}={v}" for k, v in sorted(m.detail.items()) if v
                )
                lines.append(_row([
                    row.name, backend,
                    f"{m.speedup:.2f}", f"{m.static_ratio:.2f}",
                    f"{m.static_branch_ratio:.2f}",
                    f"{m.dynamic_branch_ratio:.2f}",
                    f"{m.schedule_cycles:.0f}", notes,
                ]))
        lines.append("-" * len(header))
        for backend in self.backends:
            lines.append(_row([
                "Gmean", backend,
                f"{self.gmean(backend, 'speedup'):.2f}",
                f"{self.gmean(backend, 'static_ratio'):.2f}",
                f"{self.gmean(backend, 'static_branch_ratio'):.2f}",
                f"{self.gmean(backend, 'dynamic_branch_ratio'):.2f}",
                f"{self.gmean(backend, 'schedule_cycles'):.0f}", "",
            ]))
        return "\n".join(lines)


def compare_workload(
    workload: Workload,
    backends: Sequence[str] = BACKENDS,
    options: Optional[PipelineOptions] = None,
    processor: ProcessorConfig = MEDIUM,
) -> WorkloadComparison:
    """Build one shared baseline, then measure every backend against it."""
    for backend in backends:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
    options = options or PipelineOptions()
    program = workload.compile()
    baseline, base_profile = build_baseline(
        program, workload.inputs, options, workload.entry
    )
    base_cycles = estimate_program_cycles(
        baseline, processor, base_profile
    ).total
    base_counts = operation_counts(baseline, base_profile)
    comparison = WorkloadComparison(
        name=workload.name,
        category=workload.category,
        baseline_cycles=base_cycles,
    )
    for backend in backends:
        transformed, profile, icbm_report, meld_report = apply_backend(
            backend, baseline, workload.inputs, options, workload.entry
        )
        cycles = estimate_program_cycles(
            transformed, processor, profile
        ).total
        counts = operation_counts(transformed, profile)
        s_tot, s_br, _d_tot, d_br = counts.ratios_against(base_counts)
        detail: Dict[str, int] = {}
        if meld_report is not None:
            detail["melds"] = meld_report.melded_diamonds
        elif icbm_report is not None:
            detail["cpr_blocks"] = icbm_report.transformed_cpr_blocks
        comparison.measurements[backend] = BackendMeasurement(
            backend=backend,
            speedup=base_cycles / cycles if cycles else float("nan"),
            static_ratio=s_tot,
            static_branch_ratio=s_br,
            dynamic_branch_ratio=d_br,
            schedule_cycles=cycles,
            detail=detail,
        )
    return comparison


def compare_workloads(
    workloads: Sequence[Workload],
    backends: Sequence[str] = BACKENDS,
    options: Optional[PipelineOptions] = None,
    processor: ProcessorConfig = MEDIUM,
    progress=None,
) -> HeadToHead:
    """Head-to-head over a workload corpus; ``progress`` gets each row."""
    table = HeadToHead(backends=list(backends))
    for workload in workloads:
        try:
            row = compare_workload(workload, backends, options, processor)
        except Exception as error:  # keep the sweep alive per workload
            row = WorkloadComparison(
                name=workload.name,
                category=workload.category,
                baseline_cycles=float("nan"),
                error=str(error),
            )
        table.rows.append(row)
        if progress is not None:
            progress(row)
    return table


def compare_corpus(
    seeds: Sequence[int],
    knobs=None,
    backends: Sequence[str] = BACKENDS,
    options: Optional[PipelineOptions] = None,
    processor: ProcessorConfig = MEDIUM,
    progress=None,
) -> HeadToHead:
    """Head-to-head over a fuzz corpus (one workload per seed)."""
    from repro.fuzz.generator import generate_workload

    workloads = [generate_workload(seed, knobs) for seed in seeds]
    return compare_workloads(
        workloads, backends, options, processor, progress
    )


def _row(cells: List[str]) -> str:
    widths = [12, 7, 8, 6, 6, 6, 7, 18][: len(cells)]
    return "  ".join(
        cell.ljust(width) for cell, width in zip(cells, widths)
    ).rstrip()
