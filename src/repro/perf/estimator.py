"""Compiler-estimated benchmark performance.

The paper derives performance without detailed simulation: "the benchmark
execution time is calculated as the sum across all blocks in the program of
each block's schedule length weighted by its dynamic execution frequency",
ignoring cache/predictor dynamics. We implement that *block-weighted* mode
verbatim, plus an *exit-aware* refinement: when a region is left through a
side exit, only the cycles up to that exit's completion are charged, which
models early exits from long superblocks more faithfully. Benches use
exit-aware estimates for both baseline and transformed code (the comparison
methodology is what matters; both modes are exposed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.ir.opcodes import Opcode
from repro.ir.procedure import Procedure, Program
from repro.machine.processor import ProcessorConfig
from repro.obs import ledger_record_unique, record_counter
from repro.sched.list_scheduler import (
    schedule_procedure,
    schedule_procedure_multi,
)
from repro.sched.schedule import ProcedureSchedule
from repro.sim.profiler import ProfileData


@dataclass
class CycleEstimate:
    """Estimated cycles, with a per-block breakdown for inspection."""

    total: float = 0.0
    per_block: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, cycles: float):
        self.per_block[label] = self.per_block.get(label, 0.0) + cycles
        self.total += cycles


def estimate_procedure_cycles(
    proc: Procedure,
    processor: ProcessorConfig,
    profile: ProfileData,
    mode: str = "exit-aware",
    schedules: Optional[ProcedureSchedule] = None,
) -> CycleEstimate:
    """Estimate dynamic cycles spent in *proc* under *profile*.

    ``schedules`` lets callers that already scheduled *proc* on
    *processor* (the multi-machine evaluation path) skip rescheduling.
    """
    if mode not in ("exit-aware", "block-weighted"):
        raise ValueError(f"unknown estimation mode {mode!r}")
    if schedules is None:
        schedules = schedule_procedure(proc, processor)
    estimate = CycleEstimate()
    for block in proc.blocks:
        entry_count = profile.block_count(proc.name, block.label)
        if entry_count == 0:
            continue
        schedule = schedules.for_block(block.label)
        if mode == "block-weighted":
            estimate.add(block.label.name, entry_count * schedule.length)
            continue
        # Exit-aware: charge taken exits their completion cycle; the
        # remainder pays until the terminating jump/return takes effect
        # (in-flight latencies overlap the successor block — the cycle
        # simulator measures exactly this), or the full schedule length
        # on a plain fall-through.
        remaining = entry_count
        cycles = 0.0
        for exit_index, op in enumerate(
            o for o in block.ops if o.opcode is Opcode.BRANCH
        ):
            taken = profile.branch_profile(proc.name, op).taken
            # A stale or inconsistent profile can claim more taken exits
            # than entries remain; never let the remainder go negative
            # (the sanitizer's profile-flow check flags the root cause).
            # The clamp used to be silent — the estimate quietly stopped
            # charging real exits — so it now leaves a ledger warning
            # (deduplicated: the estimator runs once per processor).
            clamped = max(0, min(taken, remaining))
            if clamped != taken:
                ledger_record_unique(
                    "estimator-clamp",
                    proc.name,
                    block.label.name,
                    exit_index=exit_index,
                    taken=taken,
                    remaining=remaining,
                    entry_count=entry_count,
                )
                record_counter("perf.estimator_clamps")
            taken = clamped
            if taken:
                cycles += taken * max(schedule.exit_cycle(op), 1)
                remaining -= taken
        terminator = block.terminator()
        if terminator is not None:
            tail_cost = max(schedule.exit_cycle(terminator), 1)
        else:
            tail_cost = max(schedule.length, 1)
        cycles += remaining * tail_cost
        estimate.add(block.label.name, cycles)
    return estimate


def estimate_program_cycles(
    program: Program,
    processor: ProcessorConfig,
    profile: ProfileData,
    mode: str = "exit-aware",
    schedules: Optional[Dict[str, ProcedureSchedule]] = None,
) -> CycleEstimate:
    """Whole-program estimate: the sum over all procedures.

    ``schedules`` (procedure name -> :class:`ProcedureSchedule`) skips
    rescheduling for procedures already scheduled on *processor*.
    """
    total = CycleEstimate()
    for proc in program.procedures.values():
        partial = estimate_procedure_cycles(
            proc, processor, profile, mode,
            schedules=None if schedules is None else schedules.get(proc.name),
        )
        for label, cycles in partial.per_block.items():
            total.add(f"{proc.name}/{label}", cycles)
    return total


def estimate_program_cycles_multi(
    program: Program,
    processors: Sequence[ProcessorConfig],
    profile: ProfileData,
    mode: str = "exit-aware",
) -> Dict[str, CycleEstimate]:
    """Estimate *program* on several machines; returns name -> estimate.

    The registry evaluation measures every build on all five paper
    presets. Scheduling dominates that loop, and the presets share one
    latency model, so :func:`schedule_procedure_multi` lowers each block
    once and reuses it across machines (under the ``soa`` engine; the
    ``object`` engine degrades to one independent pass per machine).
    The per-machine estimates are identical to calling
    :func:`estimate_program_cycles` once per processor.
    """
    by_proc = {
        proc.name: schedule_procedure_multi(proc, processors)
        for proc in program.procedures.values()
    }
    estimates: Dict[str, CycleEstimate] = {}
    for processor in processors:
        estimates[processor.name] = estimate_program_cycles(
            program, processor, profile, mode,
            schedules={
                name: per_machine[processor.name]
                for name, per_machine in by_proc.items()
            },
        )
    return estimates
