"""Robustness tooling: deterministic fault injection and chaos testing.

* :mod:`repro.robustness.faultinject` — seeded mid-pass sabotage for the
  transactional pass manager's rollback machinery;
* :mod:`repro.robustness.smoke` — the fault-injection smoke sweep CI runs
  on every push;
* :mod:`repro.robustness.chaos` — seeded worker-level chaos (kills,
  hangs, heartbeat stalls, poison tasks) for the supervised build farm.
"""

from repro.robustness.faultinject import (
    KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    derive_seed,
)

#: Chaos names re-exported lazily: ``python -m repro.robustness.chaos``
#: would otherwise import the module twice (once via this package, once
#: as ``__main__``) and runpy warns about the aliasing.
_CHAOS_EXPORTS = ("ACTIONS", "ChaosPlan", "parse_spec", "run_chaos")

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KINDS",
    "derive_seed",
    *_CHAOS_EXPORTS,
]


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from repro.robustness import chaos

        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
