"""Robustness tooling: deterministic fault injection for rollback testing."""

from repro.robustness.faultinject import (
    KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

__all__ = ["KINDS", "FaultPlan", "FaultSpec", "InjectedFault"]
