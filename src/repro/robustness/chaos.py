"""Chaos harness for the supervised farm: ``python -m repro.robustness.chaos``.

Injects worker misbehaviour into supervised farm runs on a seeded
schedule and asserts the supervision contract end to end: **every run
terminates in one of three states** — a complete
:class:`~repro.farm.farm.FarmResult`, a structured
:class:`~repro.farm.journal.QuarantineIncident`, or a resumable journal —
and never a hang. Completed workloads must match an undisturbed reference
build bit-for-bit (``comparable()`` summaries), and resuming from the
journal must reconstruct the same result, so chaos can reorder and retry
work but never change what gets built.

Actions a :class:`ChaosPlan` can order a worker to take (see
:func:`repro.farm.supervisor._apply_chaos`):

* ``kill`` — SIGKILL itself once; the supervisor respawns and retries;
* ``poison`` — SIGKILL itself on *every* attempt, driving the crash-loop
  circuit breaker to quarantine the workload;
* ``hang`` — spin forever with heartbeats flowing, so only the per-task
  deadline can reclaim the worker;
* ``stall`` — suppress heartbeats and sleep, tripping the heartbeat
  timeout while the task would eventually have finished;
* ``slow`` — sleep before building, stretching the run without
  misbehaving (exercises budget accounting and teardown).

Scheduling follows the spawn-order-independence discipline of
:meth:`repro.robustness.faultinject.FaultPlan.derive`: each workload's
action is drawn from an RNG seeded by :func:`derive_seed(seed, scope)
<repro.robustness.faultinject.derive_seed>`, so the schedule is a pure
function of ``(seed, workload name)`` — never of worker identity,
dispatch order, or job count.

``--server-kill`` turns the harness on the serve daemon
(:mod:`repro.serve`) instead: boot ``repro serve`` with a request
journal, SIGKILL the *daemon itself* while a seeded victim request is in
flight (the victim index is ``derive_seed(seed, "server-kill")`` — pure
seed function again), restart with ``--resume``, and assert the
recovery contract: every journalled accept is either answered
identically to an undisturbed direct-farm run or explicitly NACKed
(410), never silently lost, and re-submitting a NACKed id produces the
reference answer.

``--storage`` turns the harness on the durable-storage layer instead
(:mod:`repro.robustness.storagechaos`): seeded IO faults — bit flips,
torn writes, ENOSPC, EIO, lost fsyncs — are injected into the pass
cache and both write-ahead journals, asserting the degradation
contracts: corrupted state is detected and quarantined or skipped
(never replayed into a merge, warm restore, or serve response), a full
disk under the cache degrades the run to cache-off without aborting,
and results stay bit-identical to an unfaulted reference.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import FarmInterrupted, FarmTimeout, UsageError
from repro.robustness.faultinject import derive_seed
from repro.storage.framing import parse_record_line

#: Recognized chaos actions.
ACTIONS = ("kill", "hang", "stall", "slow", "poison")

#: Recognized dial parameters (seconds) in a plan or ``--chaos`` spec.
PARAMS = ("slow_s", "stall_s")

DEFAULT_WORKLOADS = ("strcpy", "cmp", "wc", "grep")


@dataclass
class ChaosPlan:
    """A per-workload misbehaviour schedule; picklable like all options.

    ``rules`` maps workload names to actions. ``params`` carries the
    dials (``slow_s``, ``stall_s``). Only the *first* attempt of a
    workload misbehaves — the retry must be able to succeed — except for
    ``poison``, which strikes every attempt so the circuit breaker trips.
    """

    rules: Dict[str, str] = field(default_factory=dict)
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        for name, action in self.rules.items():
            if action not in ACTIONS:
                raise UsageError(
                    f"unknown chaos action {action!r} for {name!r}; "
                    f"expected one of {ACTIONS}"
                )
        for key in self.params:
            if key not in PARAMS:
                raise UsageError(
                    f"unknown chaos parameter {key!r}; "
                    f"expected one of {PARAMS}"
                )

    def action_for(self, name: str, attempt: int) -> Optional[dict]:
        """The supervisor's hook: what should *name*'s attempt N do?"""
        action = self.rules.get(name)
        if action is None:
            return None
        if action != "poison" and attempt > 1:
            return None
        event = {"action": action}
        if action == "slow":
            event["slow_s"] = float(self.params.get("slow_s", 1.0))
        elif action == "stall":
            event["stall_s"] = float(self.params.get("stall_s", 3.0))
        return event

    @classmethod
    def schedule(
        cls,
        seed: int,
        names: Sequence[str],
        rate: float = 0.75,
        actions: Sequence[str] = ACTIONS,
        params: Optional[Dict[str, float]] = None,
    ) -> "ChaosPlan":
        """A seeded schedule over *names*, spawn-order independent.

        Each workload draws from its own RNG seeded by
        ``derive_seed(seed, "chaos:<name>")``, so whether (and how) a
        workload misbehaves depends only on the root seed and its own
        name — two runs with different ``--jobs`` values or dispatch
        orders observe the identical schedule.
        """
        rules: Dict[str, str] = {}
        for name in names:
            rng = random.Random(derive_seed(seed, f"chaos:{name}"))
            if rng.random() < rate:
                rules[name] = actions[rng.randrange(len(actions))]
        return cls(rules, dict(params or {}))


def parse_spec(text: str) -> ChaosPlan:
    """Parse a ``--chaos`` spec: ``name=action[,name=action...][;key=val...]``.

    Example: ``strcpy=slow,cmp=kill;slow_s=20`` — strcpy's first attempt
    sleeps 20s, cmp's first attempt SIGKILLs its worker. Raises
    :class:`~repro.errors.UsageError` on malformed input, unknown
    actions, or unknown parameters.
    """
    rules: Dict[str, str] = {}
    params: Dict[str, float] = {}
    head, _, tail = text.partition(";")
    for part in head.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, action = part.partition("=")
        if not sep or not name.strip() or not action.strip():
            raise UsageError(
                f"malformed chaos rule {part!r}; expected name=action"
            )
        rules[name.strip()] = action.strip()
    if tail:
        for part in tail.split(";"):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise UsageError(
                    f"malformed chaos parameter {part!r}; expected key=value"
                )
            try:
                params[key.strip()] = float(value)
            except ValueError:
                raise UsageError(
                    f"chaos parameter {key.strip()!r} needs a number, "
                    f"got {value!r}"
                ) from None
    if not rules:
        raise UsageError(f"chaos spec {text!r} names no workloads")
    return ChaosPlan(rules, params)


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class ChaosVerdict:
    """One seed's outcome, as printed and as judged."""

    seed: int
    outcome: str  # "complete" | "resumable" | "FAILED"
    completed: int = 0
    quarantined: int = 0
    schedule: Dict[str, str] = field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in ("complete", "resumable")

    def render(self) -> str:
        plan = (
            ",".join(f"{n}={a}" for n, a in sorted(self.schedule.items()))
            or "(clean)"
        )
        return (
            f"seed {self.seed:<12} {self.outcome:<10} "
            f"completed={self.completed} quarantined={self.quarantined} "
            f"[{plan}]{'  ' + self.detail if self.detail else ''}"
        )


def _comparable_map(result) -> Dict[str, dict]:
    return {s.name: s.comparable() for s in result.summaries}


def _check_result(result, names, reference: Dict[str, dict]) -> str:
    """Assert a terminal FarmResult against the chaos contract.

    Returns an error string ("" = pass): every workload must be accounted
    for (completed or quarantined, never silently dropped), and every
    completed summary must match the undisturbed reference exactly.
    """
    built = _comparable_map(result)
    quarantined = {q.workload for q in result.quarantined}
    missing = [
        n for n in names if n not in built and n not in quarantined
    ]
    if missing:
        return f"workloads unaccounted for: {missing}"
    overlap = sorted(set(built) & quarantined)
    if overlap:
        return f"workloads both completed and quarantined: {overlap}"
    diverged = [n for n in built if built[n] != reference[n]]
    if diverged:
        return f"completed workloads diverged from reference: {diverged}"
    return ""


def run_chaos_seed(
    seed: int,
    names: Sequence[str],
    jobs: int,
    out_dir: Path,
    *,
    rate: float = 0.75,
    deadline_s: float = 30.0,
    budget_s: float = 240.0,
    retries: int = 1,
    reference: Optional[Dict[str, dict]] = None,
    plan: Optional[ChaosPlan] = None,
) -> ChaosVerdict:
    """One chaos run: inject, then prove the terminal state is legal.

    Dials are chosen so every action has a deterministic consequence:
    ``stall_s`` exceeds the heartbeat timeout (the stall *must* trip it)
    and ``slow_s`` stays well under ``deadline_s`` (slow workers must
    *not* be killed).
    """
    from repro.farm.farm import FarmOptions, build_farm
    from repro.farm.journal import load_journal
    from repro.farm.supervisor import SupervisorOptions

    names = list(names)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    base = dict(jobs=jobs, processors=("medium",))
    if reference is None:
        reference = _comparable_map(build_farm(names, FarmOptions(**base)))
    if plan is None:
        plan = ChaosPlan.schedule(
            seed, names, rate=rate, params={"slow_s": 1.0, "stall_s": 4.0}
        )
    journal = out_dir / f"chaos-{seed}.journal"
    sup = SupervisorOptions(
        deadline_s=deadline_s,
        budget_s=budget_s,
        retries=retries,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
        backoff_base_s=0.01,
        journal_path=str(journal),
    )
    verdict = ChaosVerdict(seed=seed, outcome="FAILED", schedule=plan.rules)

    def _resume(chaos=None):
        return build_farm(
            names,
            FarmOptions(
                **base,
                supervisor=SupervisorOptions(
                    deadline_s=deadline_s,
                    budget_s=budget_s,
                    retries=retries,
                    heartbeat_interval_s=0.05,
                    heartbeat_timeout_s=1.5,
                    backoff_base_s=0.01,
                    journal_path=str(journal),
                    resume=True,
                ),
                chaos=chaos,
            ),
        )

    try:
        result = build_farm(
            names, FarmOptions(**base, supervisor=sup, chaos=plan)
        )
    except (FarmInterrupted, FarmTimeout) as exc:
        # Terminal state 3: the run was cut short, so the journal must be
        # loadable AND actually resumable — prove it by resuming with
        # chaos disabled and checking the final result.
        state = load_journal(journal)
        verdict.completed = len(state.completions)
        verdict.quarantined = len(state.quarantines)
        resumed = _resume()
        error = _check_result(resumed, names, reference)
        if error:
            verdict.detail = f"resume after {type(exc).__name__}: {error}"
            return verdict
        verdict.outcome = "resumable"
        verdict.detail = type(exc).__name__
        return verdict
    except Exception as exc:  # any other escape is a contract violation
        verdict.detail = f"{type(exc).__name__}: {exc}"
        return verdict

    # Terminal states 1/2: complete result, possibly with quarantines.
    verdict.completed = len(result.summaries)
    verdict.quarantined = len(result.quarantined)
    error = _check_result(result, names, reference)
    if error:
        verdict.detail = error
        return verdict
    if result.quarantined:
        incident_path = out_dir / f"chaos-{seed}.incidents.json"
        incident_path.write_text(
            json.dumps(
                [q.to_dict() for q in result.quarantined],
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        expected = retries + 1
        short = [
            q.workload for q in result.quarantined if q.attempts != expected
        ]
        if short:
            verdict.detail = (
                f"quarantine without {expected} attempts: {short}"
            )
            return verdict
    # Replay check: resuming the completed journal must reconstruct the
    # identical result without re-running anything.
    replayed = _resume()
    error = _check_result(replayed, names, reference)
    if error:
        verdict.detail = f"journal replay: {error}"
        return verdict
    if replayed.resumed != len(result.summaries):
        verdict.detail = (
            f"replay re-ran work: resumed={replayed.resumed}, "
            f"expected {len(result.summaries)}"
        )
        return verdict
    verdict.outcome = "complete"
    return verdict


def run_chaos(
    seeds: Sequence[int],
    names: Sequence[str] = DEFAULT_WORKLOADS,
    jobs: int = 2,
    out_dir="chaos-out",
    out=sys.stdout,
    **dials,
) -> int:
    """Run the harness over *seeds*; returns a process exit code."""
    from repro.farm.farm import FarmOptions, build_farm

    names = list(names)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    reference = _comparable_map(
        build_farm(names, FarmOptions(jobs=jobs, processors=("medium",)))
    )
    verdicts: List[ChaosVerdict] = []
    for seed in seeds:
        verdict = run_chaos_seed(
            seed, names, jobs, out_dir, reference=reference, **dials
        )
        verdicts.append(verdict)
        print(verdict.render(), file=out)
    failures = [v for v in verdicts if not v.ok]
    print(
        f"{'CHAOS FAILED' if failures else 'chaos ok'}: "
        f"{len(verdicts) - len(failures)}/{len(verdicts)} seeds terminated "
        "legally",
        file=out,
    )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# Server-kill: chaos for the serve daemon (--server-kill)
# ----------------------------------------------------------------------
#: Workloads for the serve-daemon kill harness (small, fast builds).
SERVER_KILL_WORKLOADS = ("strcpy", "cmp")


def _start_serve(journal: Path, cache_dir: Path, resume: bool):
    """Boot ``repro serve`` as a subprocess; (proc, host, port)."""
    import os
    import re
    import subprocess

    command = [
        sys.executable, "-m", "repro", "serve",
        "--backend-jobs", "1",
        "--journal", str(journal),
        "--cache", "--cache-dir", str(cache_dir),
    ]
    if resume:
        command.append("--resume")
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=dict(os.environ),
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        proc.wait()
        raise UsageError(
            f"serve daemon did not announce readiness, got {line!r}"
        )
    return proc, match.group(1), int(match.group(2))


def _wait_for_accept(journal: Path, request_id: str, timeout_s: float) -> bool:
    """Poll the serve journal until *request_id*'s accept is durable."""
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            text = journal.read_text(encoding="utf-8")
        except OSError:
            text = ""
        for line in text.splitlines():
            # framed=False accepts both v2 envelopes and bare v1 records.
            record, status = parse_record_line(line, framed=False)
            if record is None:
                continue
            if (
                record.get("kind") == "accept"
                and record.get("id") == request_id
            ):
                return True
        time.sleep(0.01)
    return False


def run_server_kill_seed(
    seed: int,
    names: Sequence[str],
    out_dir: Path,
    reference: Dict[str, dict],
) -> ChaosVerdict:
    """SIGKILL the serve daemon mid-request; prove restart-and-recover.

    The victim request is chosen by ``derive_seed(seed, "server-kill")``
    — a pure function of the seed, never of timing or pids. The daemon
    is killed only after the victim's ``accept`` record is durably
    journalled, so the contract under test is exact: **every accepted
    request is either answered identically to the undisturbed run or
    explicitly NACKed (410) after restart — never silently lost** — and
    a re-submitted NACKed request must then match the reference.
    """
    import signal
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.journal import load_serve_journal

    names = list(names)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    journal = out_dir / f"server-kill-{seed}.journal"
    cache_dir = out_dir / f"server-kill-{seed}.cache"
    if journal.exists():
        journal.unlink()
    victim = derive_seed(seed, "server-kill") % len(names)
    victim_id = f"req-{victim}"
    verdict = ChaosVerdict(
        seed=seed,
        outcome="FAILED",
        schedule={names[victim]: "server-kill"},
    )

    proc, host, port = _start_serve(journal, cache_dir, resume=False)
    answered: Dict[str, dict] = {}
    try:
        client = ServeClient(host, port, timeout=180.0)
        client.wait_ready()
        for index in range(victim):
            response = client.compile(
                workload=names[index], id=f"req-{index}", client="chaos"
            )
            if response.status != 200:
                verdict.detail = (
                    f"pre-victim request {names[index]} answered "
                    f"{response.status}"
                )
                return verdict
            answered[f"req-{index}"] = response.body
        box: Dict[str, object] = {}

        def _fire():
            try:
                box["response"] = client.compile(
                    workload=names[victim], id=victim_id, client="chaos"
                )
            except OSError as exc:
                box["error"] = exc

        thread = threading.Thread(target=_fire, daemon=True)
        thread.start()
        if not _wait_for_accept(journal, victim_id, timeout_s=60.0):
            verdict.detail = "victim accept never reached the journal"
            return verdict
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        thread.join(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    proc2, host2, port2 = _start_serve(journal, cache_dir, resume=True)
    client2 = ServeClient(host2, port2, timeout=180.0)
    try:
        client2.wait_ready()
        state = load_serve_journal(journal)
        sent = list(answered) + [victim_id]
        lost = [rid for rid in sent if rid not in state.order]
        if lost:
            verdict.detail = f"sent requests missing from journal: {lost}"
            return verdict
        replayed = nacked = resubmitted = 0
        for rid in state.order:
            workload = state.accepts[rid].get("workload")
            response = client2.request_status(rid)
            if response.status == 200:
                if response.body.get("summary") != reference[workload]:
                    verdict.detail = f"replayed {rid} diverged from reference"
                    return verdict
                replayed += 1
            elif response.status == 410:
                nacked += 1
                retry = client2.compile(
                    workload=workload, id=rid, client="chaos"
                )
                if retry.status != 200:
                    verdict.detail = (
                        f"re-submitted {rid} answered {retry.status}"
                    )
                    return verdict
                if retry.body.get("summary") != reference[workload]:
                    verdict.detail = (
                        f"re-submitted {rid} diverged from reference"
                    )
                    return verdict
                resubmitted += 1
            else:
                verdict.detail = (
                    f"accepted request {rid} lost: "
                    f"GET /v1/requests returned {response.status}"
                )
                return verdict
        for rid, body in answered.items():
            workload = body.get("workload")
            if body.get("summary") != reference[workload]:
                verdict.detail = (
                    f"pre-kill answer {rid} diverged from reference"
                )
                return verdict
        verdict.completed = replayed
        verdict.quarantined = 0
        verdict.outcome = "recovered"
        verdict.detail = f"nacked={nacked} resubmitted={resubmitted}"
        return verdict
    finally:
        try:
            client2.drain()
            proc2.wait(timeout=30)
        except Exception:
            pass
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()


def run_server_kill(
    seeds: Sequence[int],
    names: Sequence[str] = SERVER_KILL_WORKLOADS,
    out_dir="chaos-out",
    out=sys.stdout,
) -> int:
    """The ``--server-kill`` mode: one daemon kill-and-recover per seed."""
    from repro.farm.farm import FarmOptions, build_farm

    names = list(names)
    reference = _comparable_map(
        build_farm(names, FarmOptions(jobs=1, processors=("medium",)))
    )
    verdicts: List[ChaosVerdict] = []
    for seed in seeds:
        verdict = run_server_kill_seed(seed, names, Path(out_dir), reference)
        verdicts.append(verdict)
        print(verdict.render(), file=out)
    failures = [v for v in verdicts if v.outcome != "recovered"]
    print(
        f"{'SERVER-KILL FAILED' if failures else 'server-kill ok'}: "
        f"{len(verdicts) - len(failures)}/{len(verdicts)} seeds "
        "recovered legally",
        file=out,
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.robustness.chaos",
        description="seeded chaos harness for the supervised build farm",
    )
    parser.add_argument(
        "--seeds", default="0",
        help="comma-separated chaos seeds, one harness run each",
    )
    parser.add_argument(
        "--workloads", default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated workload names",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--out-dir", default="chaos-out",
        help="where journals and incident reports land",
    )
    parser.add_argument(
        "--rate", type=float, default=0.75,
        help="per-workload probability of misbehaving",
    )
    parser.add_argument(
        "--deadline", type=float, default=30.0, dest="deadline_s",
        help="per-workload deadline handed to the supervisor (seconds)",
    )
    parser.add_argument(
        "--budget", type=float, default=240.0, dest="budget_s",
        help="per-seed wall-clock budget (seconds)",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="supervisor re-dispatches before quarantine",
    )
    parser.add_argument(
        "--server-kill", action="store_true",
        help="chaos the serve daemon instead of farm workers: SIGKILL "
             "it mid-request (victim chosen by the seed), restart with "
             "--resume, and assert every accepted request is answered "
             "identically to the undisturbed run or explicitly NACKed",
    )
    parser.add_argument(
        "--storage", action="store_true",
        help="chaos the durable-storage layer instead of farm workers: "
             "inject seeded IO faults (bit flips, torn writes, ENOSPC, "
             "EIO, lost fsyncs) into the pass cache and both write-ahead "
             "journals and assert corruption is detected, quarantined, "
             "and never replayed, while results match the unfaulted "
             "reference",
    )
    args = parser.parse_args(argv)
    try:
        seeds = [
            int(part) for part in args.seeds.split(",") if part.strip()
        ]
    except ValueError:
        raise UsageError(
            f"--seeds must be comma-separated integers, got {args.seeds!r}"
        ) from None
    names = [
        part.strip() for part in args.workloads.split(",") if part.strip()
    ]
    if args.storage:
        from repro.robustness.storagechaos import run_storage_sweep

        if args.workloads == ",".join(DEFAULT_WORKLOADS):
            names = list(SERVER_KILL_WORKLOADS)
        return run_storage_sweep(seeds, names, out_dir=args.out_dir)
    if args.server_kill:
        if args.workloads == ",".join(DEFAULT_WORKLOADS):
            names = list(SERVER_KILL_WORKLOADS)
        return run_server_kill(seeds, names, out_dir=args.out_dir)
    return run_chaos(
        seeds,
        names,
        jobs=args.jobs,
        out_dir=args.out_dir,
        rate=args.rate,
        deadline_s=args.deadline_s,
        budget_s=args.budget_s,
        retries=args.retries,
    )


if __name__ == "__main__":
    sys.exit(main())
