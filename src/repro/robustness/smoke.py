"""Seeded fault-injection smoke: ``python -m repro.robustness.smoke``.

Builds a couple of small workloads with every fault kind injected into ICBM
and asserts the resilience contract end to end: the build completes, the
differential equivalence check passes (it runs inside ``build_workload``),
and every fired fault is accounted for by at least one structured incident.
Designed to finish in well under a minute so CI can run it on every push.
"""

from __future__ import annotations

import argparse
import sys

from repro.pipeline import PipelineOptions, build_workload
from repro.robustness.faultinject import KINDS, FaultPlan, FaultSpec
from repro.workloads.registry import get_workload

DEFAULT_WORKLOADS = ("strcpy", "cmp")


def run_smoke(seed: int = 0, names=DEFAULT_WORKLOADS, out=sys.stdout) -> int:
    failures = 0
    for name in names:
        for kind in KINDS:
            workload = get_workload(name)
            plan = FaultPlan(
                [FaultSpec(pass_name="icbm", kind=kind)], seed=seed
            )
            build = build_workload(
                workload.name,
                workload.compile(),
                workload.inputs,
                PipelineOptions(fault_plan=plan),
                entry=workload.entry,
            )
            report = build.build_report
            fired = len(plan.log)
            ok = fired > 0 and bool(report.incidents)
            if not ok:
                failures += 1
            print(
                f"{name:<10} {kind:<14} faults={fired:<3} "
                f"incidents={len(report.incidents):<3} "
                f"degraded={report.degraded} rolled_back={report.rolled_back} "
                f"{'ok' if ok else 'FAIL'}",
                file=out,
            )
    verdict = "SMOKE FAILED" if failures else "smoke ok"
    print(
        f"{verdict}: {len(names) * len(KINDS) - failures}/"
        f"{len(names) * len(KINDS)} scenarios recovered",
        file=out,
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.robustness.smoke",
        description="seeded fault-injection smoke over the build pipeline",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated workload names",
    )
    args = parser.parse_args(argv)
    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    return run_smoke(seed=args.seed, names=names)


if __name__ == "__main__":
    sys.exit(main())
