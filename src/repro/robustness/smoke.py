"""Seeded fault-injection smoke: ``python -m repro.robustness.smoke``.

Builds a couple of small workloads with every fault kind injected into ICBM
and asserts the resilience contract end to end: the build completes, the
differential equivalence check passes (it runs inside ``build_workload``),
and every fired fault is accounted for by at least one structured incident.
Designed to finish in well under a minute so CI can run it on every push.

``--jobs N`` fans the scenarios across a process pool. Each scenario
derives its own :class:`FaultPlan` via :meth:`FaultPlan.derive`, so the
injected faults — and the printed report, which follows scenario order,
not completion order — are identical for every ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys
from concurrent.futures import ProcessPoolExecutor

from repro.pipeline import PipelineOptions, build_workload
from repro.robustness.faultinject import KINDS, FaultPlan, FaultSpec
from repro.workloads.registry import get_workload

DEFAULT_WORKLOADS = ("strcpy", "cmp")


def _run_scenario(task) -> dict:
    """One (workload, fault kind) build; must stay picklable by reference."""
    name, kind, seed, sanitize = task
    workload = get_workload(name)
    base = FaultPlan([FaultSpec(pass_name="icbm", kind=kind)], seed=seed)
    plan = base.derive(f"{name}:{kind}")
    build = build_workload(
        workload.name,
        workload.compile(),
        workload.inputs,
        PipelineOptions(fault_plan=plan, sanitize=sanitize),
        entry=workload.entry,
    )
    report = build.build_report
    return {
        "name": name,
        "kind": kind,
        "fired": len(plan.log),
        "incidents": len(report.incidents),
        "degraded": report.degraded,
        "rolled_back": report.rolled_back,
    }


def run_smoke(
    seed: int = 0, names=DEFAULT_WORKLOADS, out=sys.stdout, jobs: int = 1,
    sanitize=None,
) -> int:
    tasks = [
        (name, kind, seed, sanitize) for name in names for kind in KINDS
    ]
    if jobs <= 1 or len(tasks) <= 1:
        results = [_run_scenario(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_run_scenario, tasks))

    failures = 0
    for row in results:
        ok = row["fired"] > 0 and row["incidents"] > 0
        if not ok:
            failures += 1
        print(
            f"{row['name']:<10} {row['kind']:<14} faults={row['fired']:<3} "
            f"incidents={row['incidents']:<3} "
            f"degraded={row['degraded']} rolled_back={row['rolled_back']} "
            f"{'ok' if ok else 'FAIL'}",
            file=out,
        )
    verdict = "SMOKE FAILED" if failures else "smoke ok"
    print(
        f"{verdict}: {len(tasks) - failures}/{len(tasks)} "
        "scenarios recovered",
        file=out,
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.robustness.smoke",
        description="seeded fault-injection smoke over the build pipeline",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated workload names",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the scenario fan-out",
    )
    parser.add_argument(
        "--sanitize", nargs="?", const="fast", default=None,
        choices=("fast", "full"), metavar="TIER",
        help="arm the semantic sanitizer battery inside every pass "
             "transaction during the sweep",
    )
    args = parser.parse_args(argv)
    names = [name.strip() for name in args.workloads.split(",") if name.strip()]
    return run_smoke(
        seed=args.seed, names=names, jobs=args.jobs,
        sanitize=args.sanitize,
    )


if __name__ == "__main__":
    sys.exit(main())
