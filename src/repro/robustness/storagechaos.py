"""Seeded IO-fault sweep over the durable-storage layer (``--storage``).

The storage integrity contracts (DESIGN.md §16) are promises about what
happens when the disk misbehaves; this harness makes the disk misbehave
on a seeded schedule (:mod:`repro.storage.faults`) and checks every
promise end to end, per seed:

* **Cache leg** — builds run with bit flips and torn writes injected
  into cache reads, EIO into cache IO, and a permanently full disk
  under cache writes. Every build must complete with summaries
  bit-identical to an unfaulted reference: corrupt entries are
  quarantined (never unpickled into a warm build), IO errors degrade
  the run to cache-off (``storage.degraded_to_off``), and nothing
  aborts.
* **Farm journal leg** — a supervised, journalled run is corrupted
  offline: one ``complete`` record's checksum is broken while the line
  stays valid JSON (the corruption JSON parsing alone can never catch).
  The resumed run must detect it (``JournalState.corrupt``), re-run
  exactly that workload, and merge a result bit-identical to the
  reference — the corrupt outcome is never replayed. A separate run
  proves ENOSPC on a journal append aborts with
  :class:`~repro.errors.JournalWriteError` (exit code 8) instead of
  continuing unjournaled.
* **Serve journal leg** — a request journal is written with a seeded
  bit flip injected into one ``respond`` append. Recovery must skip the
  corrupt response, NACK its request (the client gets an honest 410,
  never corrupted bytes), and replay intact responses verbatim.

Everything is a pure function of the seed: fault positions come from
``derive_seed``, so a failing sweep replays exactly. Verdicts, fault
logs, and incident artifacts land in ``--out-dir``.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro import errors
from repro.farm.farm import FarmOptions, build_farm
from repro.farm.journal import load_journal
from repro.farm.supervisor import SupervisorOptions
from repro.robustness.chaos import _comparable_map
from repro.robustness.faultinject import derive_seed
from repro.serve import journal as serve_journal
from repro.storage.faults import (
    StorageFaultPlan,
    StorageFaultSpec,
    activate_storage_faults,
)
from repro.storage.framing import frame_record, parse_record_line

#: Small, fast workloads — the sweep runs several builds per seed.
STORAGE_WORKLOADS = ("strcpy", "cmp")


@dataclass
class StorageVerdict:
    """One seed's sweep outcome, as printed and as judged."""

    seed: int
    outcome: str = "FAILED"  # "survived" | "FAILED"
    checks: List[str] = field(default_factory=list)
    faults_fired: int = 0
    corrupt_detected: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "survived"

    def render(self) -> str:
        return (
            f"seed {self.seed:<12} {self.outcome:<9} "
            f"checks={len(self.checks)} faults={self.faults_fired} "
            f"corrupt-detected={self.corrupt_detected} {self.detail}"
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "outcome": self.outcome,
            "checks": list(self.checks),
            "faults_fired": self.faults_fired,
            "corrupt_detected": self.corrupt_detected,
            "detail": self.detail,
        }


def _options(names, cache_root=None, supervisor=None) -> FarmOptions:
    return FarmOptions(
        jobs=1,
        processors=("medium",),
        cache_root=None if cache_root is None else str(cache_root),
        supervisor=supervisor,
    )


def _storage_counter(result, name: str) -> int:
    return int(result.metrics.counters.get(f"storage.{name}").total)


# ----------------------------------------------------------------------
# Cache leg
# ----------------------------------------------------------------------
def _cache_leg(seed: int, names, reference, work: Path, verdict) -> str:
    """'' on success, else the failed contract. Runs three builds."""
    # 1. Warm build under read corruption: prime a clean cache, then
    #    read it back with seeded bit flips and torn reads injected.
    cache = work / "cache-corrupt"
    cold = build_farm(names, _options(names, cache_root=cache))
    if _comparable_map(cold) != reference:
        return "clean cold build diverged from reference"
    plan = StorageFaultPlan(
        [
            StorageFaultSpec("bit-flip", op="cache-read", times=2),
            StorageFaultSpec("torn-write", op="cache-read", times=1, skip=2),
        ],
        seed=derive_seed(seed, "cache-corrupt"),
    )
    with activate_storage_faults(plan):
        warm = build_farm(names, _options(names, cache_root=cache))
    verdict.faults_fired += plan.fired
    if _comparable_map(warm) != reference:
        return "warm build under cache corruption diverged from reference"
    detected = (
        _storage_counter(warm, "checksum_failures")
        + _storage_counter(warm, "degraded_to_off")
    )
    if plan.fired and not detected:
        return (
            f"{plan.fired} cache faults fired but no checksum failure "
            "or degrade was recorded"
        )
    verdict.corrupt_detected += _storage_counter(warm, "checksum_failures")
    verdict.checks.append("cache-read-corruption")

    # 2. Full disk under cache writes: the build must finish cache-off.
    plan = StorageFaultPlan(
        [StorageFaultSpec("enospc", op="cache-write", times=0)],
        seed=derive_seed(seed, "cache-enospc"),
    )
    with activate_storage_faults(plan):
        result = build_farm(
            names, _options(names, cache_root=work / "cache-full")
        )
    verdict.faults_fired += plan.fired
    if _comparable_map(result) != reference:
        return "build under cache ENOSPC diverged from reference"
    if _storage_counter(result, "degraded_to_off") < 1:
        return "cache ENOSPC did not degrade the run to cache-off"
    verdict.checks.append("cache-enospc-degrade")

    # 3. EIO on cache reads of a warm cache: degrade, never abort.
    plan = StorageFaultPlan(
        [StorageFaultSpec("eio", op="cache-read", times=1)],
        seed=derive_seed(seed, "cache-eio"),
    )
    with activate_storage_faults(plan):
        result = build_farm(names, _options(names, cache_root=cache))
    verdict.faults_fired += plan.fired
    if _comparable_map(result) != reference:
        return "build under cache EIO diverged from reference"
    verdict.checks.append("cache-eio-degrade")
    return ""


# ----------------------------------------------------------------------
# Farm journal leg
# ----------------------------------------------------------------------
def _corrupt_one_complete(path: Path, seed: int) -> str:
    """Break one ``complete`` record's checksum, keeping its JSON valid.

    Returns the corrupted workload's name. This is the corruption JSON
    parsing alone cannot catch — exactly what the v2 framing exists for.
    """
    lines = path.read_text(encoding="utf-8").split("\n")
    completes = []
    for index, line in enumerate(lines):
        if not line:
            continue
        record, status = parse_record_line(line, framed=False)
        if record is not None and record.get("kind") == "complete":
            completes.append((index, record))
    if not completes:
        raise AssertionError("journal holds no complete records")
    index, record = completes[derive_seed(seed, "victim") % len(completes)]
    # Perturb one outcome field under the *original* digest: the line
    # stays valid JSON, the checksum is provably wrong.
    envelope = json.loads(frame_record(record))
    envelope["r"]["outcome"]["wall_s"] = -1.0
    lines[index] = json.dumps(envelope, sort_keys=True)
    path.write_text("\n".join(lines), encoding="utf-8")
    return record["name"]


def _farm_journal_leg(seed: int, names, reference, work: Path, verdict) -> str:
    journal = work / "farm.wal"
    first = build_farm(
        names,
        _options(
            names,
            supervisor=SupervisorOptions(journal_path=str(journal)),
        ),
    )
    if _comparable_map(first) != reference:
        return "journalled supervised run diverged from reference"
    victim = _corrupt_one_complete(journal, seed)
    state = load_journal(journal)
    if state.corrupt != 1:
        return (
            f"corrupt complete record not classified: "
            f"corrupt={state.corrupt} truncated={state.truncated}"
        )
    if victim in state.completions:
        return f"corrupt complete for {victim} was replayed into resume state"
    verdict.corrupt_detected += state.corrupt
    resumed = build_farm(
        names,
        _options(
            names,
            supervisor=SupervisorOptions(
                journal_path=str(journal), resume=True
            ),
        ),
    )
    if _comparable_map(resumed) != reference:
        return "resumed run after journal corruption diverged from reference"
    if resumed.resumed != len(names) - 1:
        return (
            f"expected {len(names) - 1} replayed outcomes after one "
            f"corrupt record, got {resumed.resumed}"
        )
    verdict.checks.append("journal-corrupt-complete-reruns")

    # ENOSPC on a journal append must abort with exit-code-8 semantics,
    # not continue unjournaled.
    plan = StorageFaultPlan(
        [StorageFaultSpec("enospc", op="journal-append", times=0)],
        seed=derive_seed(seed, "journal-enospc"),
    )
    try:
        with activate_storage_faults(plan):
            build_farm(
                names,
                _options(
                    names,
                    supervisor=SupervisorOptions(
                        journal_path=str(work / "farm-enospc.wal")
                    ),
                ),
            )
    except errors.JournalWriteError:
        verdict.faults_fired += plan.fired
        verdict.checks.append("journal-enospc-aborts")
        return ""
    except Exception as exc:  # noqa: BLE001 - harness verdict, not flow
        return (
            "journal ENOSPC surfaced as "
            f"{type(exc).__name__}, expected JournalWriteError"
        )
    return "journal ENOSPC did not abort the run"


# ----------------------------------------------------------------------
# Serve journal leg
# ----------------------------------------------------------------------
def _serve_journal_leg(seed: int, work: Path, verdict) -> str:
    path = work / "serve.wal"
    answer_a = {"status": 200, "body": {"id": "a", "summary": {"ok": 1}}}
    answer_b = {"status": 200, "body": {"id": "b", "summary": {"ok": 2}}}
    # Appends: accept a (1), respond a (2), accept b (3), respond b (4).
    # skip=3 lands the bit flip on respond b.
    plan = StorageFaultPlan(
        [StorageFaultSpec("bit-flip", op="journal-append", times=1, skip=3)],
        seed=derive_seed(seed, "serve-respond"),
    )
    with activate_storage_faults(plan):
        journal = serve_journal.ServeJournal(path)
        journal.accept("a", {"workload": "strcpy"})
        journal.respond("a", answer_a["status"], answer_a["body"])
        journal.accept("b", {"workload": "cmp"})
        journal.respond("b", answer_b["status"], answer_b["body"])
        journal.close()
    verdict.faults_fired += plan.fired
    recovered, state, nacked = serve_journal.recover(path, resume=True)
    recovered.close()
    if state.corrupt < 1 and not state.truncated:
        # A flip landing on the record's own newline legitimately reads
        # as a truncated tail; either way the record must not replay.
        return "flipped respond record was not classified corrupt"
    verdict.corrupt_detected += state.corrupt
    if state.responses.get("a") != answer_a:
        return "intact serve response was not replayed verbatim"
    if "b" in state.responses and state.responses["b"] == answer_b:
        return "corrupted respond record was replayed to the client"
    if state.states.get("b") != serve_journal.NACKED or "b" not in nacked:
        return (
            "request with corrupted response was not NACKed on recovery "
            f"(state={state.states.get('b')!r})"
        )
    verdict.checks.append("serve-corrupt-respond-nacked")
    return ""


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_storage_seed(
    seed: int,
    names: Sequence[str],
    out_dir: Path,
    reference: Dict[str, dict],
) -> StorageVerdict:
    verdict = StorageVerdict(seed=seed)
    work = Path(tempfile.mkdtemp(prefix=f"storage-chaos-{seed}-"))
    try:
        for leg in (_cache_leg, _farm_journal_leg):
            failure = leg(seed, list(names), reference, work, verdict)
            if failure:
                verdict.detail = failure
                return verdict
        failure = _serve_journal_leg(seed, work, verdict)
        if failure:
            verdict.detail = failure
            return verdict
        verdict.outcome = "survived"
        return verdict
    except Exception as exc:  # noqa: BLE001 - "zero unhandled exceptions"
        verdict.detail = f"unhandled {type(exc).__name__}: {exc}"
        return verdict
    finally:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"seed-{seed}.json").write_text(
            json.dumps(verdict.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        # Preserve quarantined cache entries as artifacts before the
        # scratch tree goes away — they are the sweep's evidence trail.
        for quarantine in sorted(work.rglob("quarantine")):
            if quarantine.is_dir() and any(quarantine.iterdir()):
                target = out_dir / f"seed-{seed}-{quarantine.parent.parent.name}-quarantine"
                shutil.copytree(quarantine, target, dirs_exist_ok=True)
        shutil.rmtree(work, ignore_errors=True)


def run_storage_sweep(
    seeds: Sequence[int],
    names: Sequence[str] = STORAGE_WORKLOADS,
    out_dir="storage-chaos-out",
    out=sys.stdout,
) -> int:
    """The ``--storage`` mode: the full fault sweep, one pass per seed."""
    names = list(names)
    reference = _comparable_map(build_farm(names, _options(names)))
    verdicts: List[StorageVerdict] = []
    for seed in seeds:
        verdict = run_storage_seed(seed, names, Path(out_dir), reference)
        verdicts.append(verdict)
        print(verdict.render(), file=out)
    failures = [v for v in verdicts if not v.ok]
    print(
        f"{'STORAGE-CHAOS FAILED' if failures else 'storage-chaos ok'}: "
        f"{len(verdicts) - len(failures)}/{len(verdicts)} seeds survived, "
        f"{sum(v.faults_fired for v in verdicts)} faults fired, "
        f"{sum(v.corrupt_detected for v in verdicts)} corruptions detected",
        file=out,
    )
    return 1 if failures else 0
