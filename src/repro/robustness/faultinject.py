"""Deterministic fault injection for the transactional pass manager.

A :class:`FaultPlan` wraps pass invocations and, when a :class:`FaultSpec`
matches the (pass, procedure) pair, sabotages the transaction in a
reproducible (seeded) way:

* ``raise`` — run the real pass to completion, *then* raise
  :class:`InjectedFault`: the IR is already mutated, so this models a
  mid-pass compiler bug whose partial work must be rolled back;
* ``fuel`` — as above, but raises :class:`~repro.errors.FuelExhausted`,
  modelling a pass (or its re-verification run) blowing its budget;
* ``drop-branch`` — run the pass, then silently delete a seeded-random
  control transfer, corrupting the IR so the verifier or the differential
  check must catch it;
* ``clobber-pred`` — run the pass, then rewire a seeded-random branch's
  predicate source to a fresh (never-set) predicate register: structurally
  valid IR whose behaviour changed, detectable only differentially.

Fault selection is a pure function of the plan's seed, the pass name, the
procedure name, and the per-spec firing count — no global randomness — so a
failing injection test replays bit-for-bit.

Parallel builders (the build farm, ``smoke --jobs``) must not share one
plan across workloads: the mutable per-spec ``fired`` counters would then
depend on completion order. :meth:`FaultPlan.derive` mints a fresh,
independent plan per scope (workload name) whose seed — and therefore
every RNG stream — depends only on ``(seed, scope)``, never on worker
spawn order, process identity, or how many builds another derived plan
already served.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import FuelExhausted, TransformError
from repro.ir.opcodes import Opcode
from repro.ir.procedure import Procedure


class InjectedFault(TransformError):
    """Raised by a :class:`FaultPlan` to simulate a mid-pass compiler bug."""


def derive_seed(seed: int, scope: str) -> int:
    """A stable sub-seed for *scope*: pure function of ``(seed, scope)``.

    This is the spawn-order-independence discipline shared by
    :meth:`FaultPlan.derive` and the chaos harness
    (:mod:`repro.robustness.chaos`): any per-scope RNG stream must depend
    only on the root seed and the scope name, never on worker identity,
    dispatch order, or how many scopes were served before this one.
    """
    digest = hashlib.sha256(f"{seed}:{scope}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Recognized fault kinds.
KINDS = ("raise", "fuel", "drop-branch", "clobber-pred")


@dataclass
class FaultSpec:
    """One injection rule: where to strike and how.

    ``pass_name`` / ``proc_name`` are exact names or ``"*"`` wildcards.
    ``times`` bounds how often the spec fires (``None`` = every match, which
    also defeats every retry rung of a degradation ladder and forces a full
    rollback).
    """

    pass_name: str = "*"
    proc_name: str = "*"
    kind: str = "raise"
    times: Optional[int] = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )

    def matches(self, pass_name: str, proc_name: str) -> bool:
        return (
            self.pass_name in ("*", pass_name)
            and self.proc_name in ("*", proc_name)
            and (self.times is None or self.fired < self.times)
        )


class FaultPlan:
    """A seeded collection of :class:`FaultSpec` rules plus a firing log."""

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        #: Every fault actually fired, as (pass_name, proc_name, kind).
        self.log: List[Tuple[str, str, str]] = []

    def derive(self, scope: str) -> "FaultPlan":
        """A fresh plan for *scope*, independent of this plan's history.

        The derived seed is a stable hash of ``(seed, scope)`` and the
        spec firing counters start at zero, so the faults injected into
        one scope are a pure function of ``(seed, scope, pass_name,
        proc_name, fired)``. Two runs that build the same scopes observe
        identical faults regardless of build order or which worker
        process handles which scope.
        """
        return FaultPlan(
            [replace(spec, fired=0) for spec in self.specs],
            seed=derive_seed(self.seed, scope),
        )

    def wrap(self, pass_name: str, proc_name: str, fn):
        """Return *fn* wrapped to inject the first matching spec, if any."""
        spec = next(
            (s for s in self.specs if s.matches(pass_name, proc_name)), None
        )
        if spec is None:
            return fn

        def sabotaged(proc: Procedure):
            spec.fired += 1
            self.log.append((pass_name, proc_name, spec.kind))
            rng = random.Random(
                f"{self.seed}:{pass_name}:{proc_name}:{spec.fired}"
            )
            if spec.kind == "raise":
                fn(proc)
                raise InjectedFault(
                    f"injected mid-pass exception in {pass_name} "
                    f"on {proc_name}"
                )
            if spec.kind == "fuel":
                fn(proc)
                raise FuelExhausted(
                    f"injected fuel exhaustion in {pass_name} "
                    f"on {proc_name}",
                    proc=proc_name,
                )
            result = fn(proc)
            if spec.kind == "drop-branch":
                _drop_random_branch(proc, rng, pass_name)
            else:  # clobber-pred
                _clobber_random_predicate(proc, rng, pass_name)
            return result

        return sabotaged


def _loop_block_ops(proc: Procedure, opcodes):
    """Control transfers inside self-loop blocks, preferred corruption
    targets.

    After superblock formation a hot loop is a single block whose back edge
    targets its own label, so any control transfer in such a block executes
    once per iteration — corrupting one is reliably *observable* on the
    profiled inputs. A superblock's forward side exits, by contrast, are
    rarely taken by construction; damage to them could go undetected on the
    very inputs the differential check replays.
    """
    picks = []
    for block in proc.blocks:
        if not any(op.branch_target() == block.label for op in block.ops):
            continue
        picks.extend(
            (block, op) for op in block.ops if op.opcode in opcodes
        )
    return picks


def _drop_random_branch(proc: Procedure, rng: random.Random, pass_name: str):
    """Delete one seeded-random control transfer (hot loops preferred)."""
    candidates = _loop_block_ops(proc, (Opcode.BRANCH, Opcode.JUMP)) or [
        (block, op)
        for block in proc.blocks
        for op in block.ops
        if op.opcode in (Opcode.BRANCH, Opcode.JUMP)
    ]
    if not candidates:
        raise InjectedFault(
            f"injected drop-branch in {pass_name} on {proc.name}: "
            "no branch to drop"
        )
    block, op = rng.choice(candidates)
    block.remove(op)


def _clobber_random_predicate(
    proc: Procedure, rng: random.Random, pass_name: str
):
    """Point one seeded-random branch (hot loops preferred) at a never-set
    predicate register."""
    candidates = _loop_block_ops(proc, (Opcode.BRANCH,)) or [
        (block, op)
        for block in proc.blocks
        for op in block.ops
        if op.opcode is Opcode.BRANCH
    ]
    if not candidates:
        raise InjectedFault(
            f"injected clobber-pred in {pass_name} on {proc.name}: "
            "no branch to clobber"
        )
    _, op = rng.choice(candidates)
    op.srcs[0] = proc.new_pred()
