"""repro — a from-scratch reproduction of

    Schlansker, Mahlke, Johnson.
    "Control CPR: A Branch Height Reduction Optimization for EPIC
    Architectures." PLDI 1999 (HPL-1999-34).

The package implements the complete system described in the paper: a
PlayDoh-style predicated EPIC intermediate representation, Elcor-style
predicate-cognizant analyses, profile-driven superblock formation, FRP
conversion, the ICBM control CPR transformation (the paper's primary
contribution), an EPIC list scheduler, the paper's compiler-estimation
performance methodology, and a suite of workloads proxying the paper's
benchmarks.

Quick start::

    from repro import get_workload, evaluate_workload

    result = evaluate_workload(get_workload("strcpy"))
    print(result.speedup("wide"))

See README.md for the architecture overview, DESIGN.md for the full system
inventory, and EXPERIMENTS.md for the paper-versus-measured record.
"""

from repro.core import CPRConfig, apply_icbm, apply_icbm_to_program
from repro.frontend import compile_source
from repro.ir import (
    Block,
    Cond,
    IRBuilder,
    Opcode,
    Procedure,
    Program,
    parse_program,
    verify_program,
)
from repro.machine import (
    INFINITE,
    MEDIUM,
    NARROW,
    PAPER_PROCESSORS,
    ProcessorConfig,
    SEQUENTIAL,
    WIDE,
)
from repro.perf import (
    build_table2,
    build_table3,
    estimate_program_cycles,
    evaluate_workload,
    operation_counts,
)
from repro.pipeline import (
    PipelineOptions,
    apply_control_cpr,
    build_baseline,
    build_workload,
)
from repro.sim import profile_program, run_program
from repro.workloads.registry import all_names, all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "Block",
    "CPRConfig",
    "Cond",
    "INFINITE",
    "IRBuilder",
    "MEDIUM",
    "NARROW",
    "Opcode",
    "PAPER_PROCESSORS",
    "PipelineOptions",
    "Procedure",
    "ProcessorConfig",
    "Program",
    "SEQUENTIAL",
    "WIDE",
    "all_names",
    "all_workloads",
    "apply_control_cpr",
    "apply_icbm",
    "apply_icbm_to_program",
    "build_baseline",
    "build_table2",
    "build_table3",
    "build_workload",
    "compile_source",
    "estimate_program_cycles",
    "evaluate_workload",
    "get_workload",
    "operation_counts",
    "parse_program",
    "profile_program",
    "run_program",
    "verify_program",
]
