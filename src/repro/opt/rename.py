"""Per-block register renaming (web splitting).

Source-level variable reuse (``c = A[i]; ...; c = A[i+1]``) maps several
independent values onto one virtual register, chaining otherwise parallel
code through anti/output dependences — and, downstream, breaking ICBM's
separability (a compare reading the old value anti-depends on the load
producing the next one). Elcor/IMPACT code is renamed (the paper's Figure 6
uses a distinct register per unrolled load), so we do the same:

within each block, every general register with multiple *unguarded*
definitions has all but the last definition renamed to fresh registers
(uses in between follow); the final definition keeps the original name so
live-out and loop-carried values are untouched.

Legality restrictions:

* predicate registers are never renamed (wired-and/or accumulation is
  already order-free) nor are registers with guarded definitions (a guarded
  write merges with the old value; splitting the web would change meaning);
* a register live into some side-exit target is not renamed when a branch
  to that target sits between its first and last definitions — at that
  branch the architected register must hold the latest value, which
  renaming would leave in a temporary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.liveness import LivenessAnalysis
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import FReg, Reg, TRUE_PRED
from repro.ir.procedure import Procedure


def rename_block_registers(
    proc: Procedure,
    block: Block,
    liveness: Optional[LivenessAnalysis] = None,
) -> int:
    """Split register webs in one block; returns renames performed."""
    # Census: which Reg/FReg have only unguarded ordinary defs, how many,
    # and where the first and last definitions sit.
    def_counts: Dict = {}
    first_def: Dict = {}
    last_def: Dict = {}
    blocked: Set = set()
    exit_positions: List[int] = []
    for index, op in enumerate(block.ops):
        if op.opcode in (Opcode.BRANCH, Opcode.JUMP):
            exit_positions.append(index)
        unconditional = set(op.unconditional_writes())
        always = set(op.always_writes())
        for reg in unconditional:
            if not isinstance(reg, (Reg, FReg)):
                continue
            def_counts[reg] = def_counts.get(reg, 0) + 1
            first_def.setdefault(reg, index)
            last_def[reg] = index
            if reg not in always or op.guard != TRUE_PRED:
                blocked.add(reg)  # guarded def: web must stay merged

    # A register live into a side-exit target must not be renamed when the
    # exit lies within its def range.
    if liveness is not None:
        for index in exit_positions:
            target = block.ops[index].branch_target()
            if target is None:
                continue
            live = liveness.live_in(target)
            for reg in list(def_counts):
                if reg in live and first_def[reg] <= index < last_def[reg]:
                    blocked.add(reg)
    else:
        # Without liveness we must assume every exit needs every register.
        for index in exit_positions:
            for reg in list(def_counts):
                if first_def[reg] <= index < last_def[reg]:
                    blocked.add(reg)

    renamable = {
        reg
        for reg, count in def_counts.items()
        if count >= 2 and reg not in blocked
    }
    if not renamable:
        return 0

    remaining = {reg: def_counts[reg] for reg in renamable}
    renames = 0
    current: Dict = {}  # original reg -> current replacement name
    for op in block.ops:
        # Rewrite uses through the current web names.
        if current:
            op.replace_sources(current)
        for reg in list(op.unconditional_writes()):
            if reg not in renamable:
                continue
            remaining[reg] -= 1
            if remaining[reg] == 0:
                # Final definition keeps the original name: later uses and
                # live-out values see the architected register.
                current.pop(reg, None)
            else:
                fresh = (
                    proc.new_freg()
                    if isinstance(reg, FReg)
                    else proc.new_reg()
                )
                current[reg] = fresh
                op.replace_dests({reg: fresh})
                renames += 1
    return renames


def rename_procedure_registers(proc: Procedure) -> int:
    liveness = LivenessAnalysis(proc)
    return sum(
        rename_block_registers(proc, block, liveness)
        for block in proc.blocks
    )
