"""Classic profile-driven optimizations used to build the baseline code."""

from repro.opt.copyprop import propagate_copies
from repro.opt.dce import eliminate_dead_code, remove_unreachable_blocks
from repro.opt.frp import FRPReport, frp_convert_block, frp_convert_procedure
from repro.opt.ifconvert import (
    IfConvertConfig,
    IfConvertReport,
    if_convert_procedure,
)
from repro.opt.rename import (
    rename_block_registers,
    rename_procedure_registers,
)
from repro.opt.superblock import (
    SuperblockConfig,
    SuperblockReport,
    form_superblocks,
)
from repro.opt.unroll import (
    UnrollReport,
    is_superblock_loop,
    unroll_hot_loops,
    unroll_superblock_loop,
)

__all__ = [
    "FRPReport",
    "SuperblockConfig",
    "SuperblockReport",
    "UnrollReport",
    "IfConvertConfig",
    "IfConvertReport",
    "eliminate_dead_code",
    "form_superblocks",
    "if_convert_procedure",
    "rename_block_registers",
    "rename_procedure_registers",
    "frp_convert_block",
    "frp_convert_procedure",
    "is_superblock_loop",
    "propagate_copies",
    "remove_unreachable_blocks",
    "unroll_hot_loops",
    "unroll_superblock_loop",
]
