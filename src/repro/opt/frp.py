"""FRP conversion: if-conversion of superblocks onto fully-resolved
predicates (paper Section 4.1 and Figure 6(c)).

A superblock's chain of exit branches makes every later operation control
dependent on every earlier branch. FRP conversion computes, for each
internal "basic block" segment (the ops between consecutive exit branches),
a *fully-resolved predicate*: true exactly when control reaches that
segment. Each exit branch's guarding cmpp gains a complementary UC target
computing the fall-through FRP, and all operations of later segments are
guarded by their segment's FRP. Chains of branch dependences become chains
of data dependences through the cmpps — which the scheduler may then
height-reduce and reorder, since the resulting branch predicates are
mutually exclusive.

The conversion is applied in place to a single block and reports whether it
fully succeeded; segments whose branch has no recognizable in-block
guarding cmpp terminate the conversion early (everything before them is
still converted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.defuse import (
    DefUseChains,
    branch_complement_pred,
    branch_source_action,
    guarding_compare,
)
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.operands import PredReg, TRUE_PRED
from repro.ir.operation import PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action


@dataclass
class FRPReport:
    """What FRP conversion did to one block."""

    converted_branches: int = 0
    total_branches: int = 0
    added_uc_targets: int = 0
    guarded_ops: int = 0

    @property
    def complete(self) -> bool:
        return self.converted_branches == self.total_branches


def frp_convert_block(proc: Procedure, block: Block) -> FRPReport:
    """Convert *block* in place; returns a report."""
    report = FRPReport()
    branches = block.exit_branches()
    report.total_branches = len(branches)
    if not branches:
        return report

    current_frp: PredReg = TRUE_PRED
    chains = DefUseChains.build(block)
    pending: List = []  # ops of the current segment awaiting guarding

    for op in list(block.ops):
        if op.opcode is Opcode.BRANCH:
            compare = guarding_compare(block, chains, op)
            source_action = (
                branch_source_action(compare, op)
                if compare is not None
                else None
            )
            usable = (
                source_action is not None
                and compare.guard in (current_frp, TRUE_PRED)
            )
            if not usable:
                # Cannot resolve this branch: guard what we have and stop.
                _guard_ops(pending, current_frp, report)
                return report
            # Guard the segment's ops (including the compare itself) by the
            # segment FRP.
            _guard_ops(pending, current_frp, report)
            if compare.guard == TRUE_PRED and current_frp != TRUE_PRED:
                compare.guard = current_frp
                report.guarded_ops += 1
            fall_pred = branch_complement_pred(compare, op)
            if fall_pred is None:
                if len(compare.dests) >= 2:
                    # No room for a complementary target: stop converting.
                    return report
                fall_pred = proc.new_pred()
                complement = (
                    Action.UC if source_action is Action.UN else Action.UN
                )
                compare.dests = list(compare.dests) + [
                    PredTarget(fall_pred, complement)
                ]
                report.added_uc_targets += 1
            current_frp = fall_pred
            report.converted_branches += 1
            pending = []
            continue
        pending.append(op)

    _guard_ops(pending, current_frp, report)
    return report


def frp_convert_procedure(proc: Procedure) -> List[FRPReport]:
    """FRP-convert every multi-exit block of *proc*."""
    reports = []
    for block in proc.blocks:
        if len(block.exit_branches()) >= 1:
            reports.append(frp_convert_block(proc, block))
    return reports


def _guard_ops(ops, frp: PredReg, report: FRPReport):
    if frp == TRUE_PRED:
        return
    for op in ops:
        if op.opcode is Opcode.JUMP:
            continue  # unconditional control flow stays unguarded
        if op.guard == TRUE_PRED:
            op.guard = frp
            report.guarded_ops += 1


