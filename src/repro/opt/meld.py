"""Branch melding: eliminate two-sided diamonds by merging rival arms.

A rival to control CPR, modeled on "Eliminate Branches by Melding IR
Instructions": instead of reducing branch *height* (CPR) or predicating
whole arms (if-conversion), melding pairs up the corresponding
operations of a diamond's two arms and merges each pair into a single
select-style operation. A matched pair ``x = a + 1`` / ``x = b + 1``
becomes one unguarded ``x = sel + 1`` where ``sel`` is the
predicate-selected source::

    sel = mov a            if T        # fall-through value
    sel = mov b            if p_taken  # overridden when the branch takes
    x   = add (sel, 1)     if T        # the melded operation

Exactly one arm executes in the original diamond, so the melded
operation — with every divergent operand routed through a select —
computes the active arm's result unconditionally. Operations with no
counterpart in the rival arm are simply guarded by their arm's
predicate, as in classic if-conversion. One-sided diamonds (an empty
else arm) degenerate to pure predication and are melded too when
``config.meld_one_sided`` is set.

Every candidate is **cost-gated by the existing machinery**: the
original diamond's profile-weighted cycle cost (head + taken arm +
fall-through arm schedule lengths, via the list scheduler on
``config.processor``) is compared against the melded head's, and the
meld is rejected unless it is estimated no slower than
``config.max_cost_ratio`` times the original. Accepts and rejects are
recorded in the decision ledger as ``meld-accept`` / ``meld-reject``
entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.defuse import (
    DefUseChains,
    branch_complement_pred,
    guarding_compare,
)
from repro.analysis.liveness import LivenessAnalysis
from repro.ir.block import Block
from repro.ir.cfg import ControlFlowGraph
from repro.ir.opcodes import Opcode
from repro.ir.operands import FReg, Label, Reg, TRUE_PRED
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action
from repro.machine.processor import MEDIUM, ProcessorConfig
from repro.obs import ledger_record, record_counter
from repro.sched.list_scheduler import schedule_block
from repro.sim.profiler import ProfileData


@dataclass
class MeldConfig:
    """Heuristics and the cost gate for diamond melding."""

    #: Arms longer than this are never melded (select chains would bloat).
    max_arm_ops: int = 12
    #: Accept a meld only when the melded head's profile-weighted cycle
    #: estimate is at most this multiple of the original diamond's.
    max_cost_ratio: float = 1.0
    #: Meld if-then diamonds with an empty else arm (pure predication).
    meld_one_sided: bool = True
    #: Machine model the cost gate schedules candidates on.
    processor: ProcessorConfig = field(default_factory=lambda: MEDIUM)
    #: With no profile data, assume this taken ratio for the cost gate.
    assumed_taken_ratio: float = 0.5


@dataclass
class MeldReport:
    """What the pass did to one procedure."""

    melded_diamonds: int = 0
    #: Operation pairs merged into one melded operation.
    melded_pairs: int = 0
    #: Select moves inserted to route divergent operands.
    select_movs: int = 0
    #: Arm operations predicated without a counterpart.
    predicated_ops: int = 0
    removed_branches: int = 0
    #: Structurally eligible diamonds the cost gate refused.
    rejected_cost: int = 0


def meld_procedure(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[MeldConfig] = None,
) -> MeldReport:
    """Meld eligible diamonds in *proc*, in place, to a fixed point."""
    config = config or MeldConfig()
    report = MeldReport()
    changed = True
    while changed:
        changed = False
        cfg = ControlFlowGraph(proc)
        for head in list(proc.blocks):
            if _try_meld(proc, cfg, head, profile, config, report):
                changed = True
                break  # CFG changed: recompute and rescan
    return report


# ----------------------------------------------------------------------
# Diamond recognition (the shapes the frontend's lowering produces)
# ----------------------------------------------------------------------
def _arm_body(block: Block) -> List[Operation]:
    terminator = block.terminator()
    if terminator is not None and terminator.opcode is Opcode.JUMP:
        return block.ops[:-1]
    return list(block.ops)


def _arm_join(proc: Procedure, block: Block) -> Optional[Label]:
    terminator = block.terminator()
    if terminator is not None and terminator.opcode is Opcode.JUMP:
        return terminator.branch_target()
    if terminator is None and block.fallthrough is not None:
        return block.fallthrough
    return None


def _arm_meldable(block: Block, config: MeldConfig) -> bool:
    ops = _arm_body(block)
    if len(ops) > config.max_arm_ops:
        return False
    for op in ops:
        if op.is_branch or op.opcode is Opcode.CALL:
            return False
        if op.guard != TRUE_PRED:
            return False  # would need guard conjunction
        if op.opcode in (Opcode.CMPP, Opcode.PRED_CLEAR, Opcode.PRED_SET):
            return False  # predicate definitions must stay unconditional
    return True


def _sole_entry(
    cfg: ControlFlowGraph, label: Label, head: Block, kind: str
) -> bool:
    """True when *label*'s only in-edge is the diamond edge from *head*.

    Counting edges (not distinct predecessor blocks) matters: a
    superblock head with a side exit can reach the same arm twice, and
    melding away the arm would orphan the side exit's branch.
    """
    edges = cfg.in_edges(label)
    return (
        len(edges) == 1
        and edges[0].src == head.label
        and edges[0].kind == kind
    )


# ----------------------------------------------------------------------
# Pairing and meld construction
# ----------------------------------------------------------------------
def _meld_key(op: Operation, renameable) -> Tuple:
    """Two ops are meld candidates when their keys agree.

    Pairs must share the opcode, comparison condition, and operand
    arities. Destinations that are live out of the diamond must match
    exactly (the melded op writes them unconditionally, so both arms
    must write the same register); destinations dead at the join are
    wildcards — the meld renames them into one fresh register and
    rewrites the rest of the arm accordingly.
    """
    dest_keys = []
    for dest in op.dests:
        if renameable(dest):
            dest_keys.append(("?", type(dest).__name__))
        else:
            dest_keys.append(("=", repr(dest)))
    return (op.opcode, op.cond, len(op.srcs), tuple(dest_keys))


def _pair_arms(
    fall_ops: List[Operation],
    taken_ops: List[Operation],
    fall_key,
    taken_key,
) -> List[Tuple[Optional[Operation], Optional[Operation]]]:
    """Longest common subsequence of the two arms under :func:`_meld_key`.

    Returns an ordered list of ``(fall_op, taken_op)`` pairs where one
    side is ``None`` for unmatched operations. LCS keeps both arms in
    program order, so melding never reorders an arm's own dependences.
    """
    n, m = len(fall_ops), len(taken_ops)
    fkeys = [fall_key(op) for op in fall_ops]
    tkeys = [taken_key(op) for op in taken_ops]
    lcs = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if fkeys[i] == tkeys[j]:
                lcs[i][j] = lcs[i + 1][j + 1] + 1
            else:
                lcs[i][j] = max(lcs[i + 1][j], lcs[i][j + 1])
    pairs: List[Tuple[Optional[Operation], Optional[Operation]]] = []
    i = j = 0
    while i < n and j < m:
        if fkeys[i] == tkeys[j]:
            pairs.append((fall_ops[i], taken_ops[j]))
            i += 1
            j += 1
        elif lcs[i + 1][j] >= lcs[i][j + 1]:
            pairs.append((fall_ops[i], None))
            i += 1
        else:
            pairs.append((None, taken_ops[j]))
            j += 1
    pairs.extend((fall_ops[k], None) for k in range(i, n))
    pairs.extend((None, taken_ops[k]) for k in range(j, m))
    return pairs


def _mint_like(proc: Procedure, reg):
    """A fresh register of *reg*'s class for a renamed meld destination."""
    if isinstance(reg, FReg):
        return proc.new_freg()
    return proc.new_reg()


def _build_meld(
    proc: Procedure,
    pairs,
    fall_pred,
    taken_pred,
) -> Tuple[List[Operation], int, int, int]:
    """The melded operation stream for the paired arms.

    Returns ``(ops, melded_pairs, select_movs, predicated_ops)``. New
    operations are built from clones so the caller can gate on a trial
    block without disturbing the original arms. Each arm carries a
    rename map (original register -> melded register) that is applied
    to that arm's later sources and killed whenever a subsequent
    operation redefines the original register.
    """
    ops: List[Operation] = []
    fall_map: dict = {}
    taken_map: dict = {}
    melded = selects = predicated = 0
    for fall_op, taken_op in pairs:
        if fall_op is not None and taken_op is not None:
            fall_srcs = [fall_map.get(s, s) for s in fall_op.srcs]
            taken_srcs = [taken_map.get(s, s) for s in taken_op.srcs]
            merged = fall_op.clone()
            srcs = list(fall_srcs)
            for position, (a, b) in enumerate(zip(fall_srcs, taken_srcs)):
                if a == b:
                    continue
                sel = proc.new_reg()
                ops.append(Operation(Opcode.MOV, dests=[sel], srcs=[a]))
                ops.append(
                    Operation(
                        Opcode.MOV, dests=[sel], srcs=[b],
                        guard=taken_pred,
                    )
                )
                srcs[position] = sel
                selects += 2
            merged.srcs = srcs
            dests = []
            for f_dest, t_dest in zip(fall_op.dests, taken_op.dests):
                if f_dest == t_dest:
                    fall_map.pop(f_dest, None)
                    taken_map.pop(t_dest, None)
                    dests.append(f_dest)
                else:
                    melded_dest = _mint_like(proc, f_dest)
                    fall_map[f_dest] = melded_dest
                    taken_map[t_dest] = melded_dest
                    dests.append(melded_dest)
            merged.dests = dests
            merged.attrs["meld"] = "pair"
            ops.append(merged)
            melded += 1
        else:
            op = fall_op if fall_op is not None else taken_op
            arm_map = fall_map if fall_op is not None else taken_map
            guarded = op.clone()
            guarded.srcs = [arm_map.get(s, s) for s in guarded.srcs]
            guarded.guard = fall_pred if fall_op is not None else taken_pred
            guarded.attrs["meld"] = "guarded"
            for dest in guarded.dests:
                arm_map.pop(dest, None)
            ops.append(guarded)
            predicated += 1
    return ops, melded, selects, predicated


# ----------------------------------------------------------------------
# Cost gate (the existing scheduler is the estimator's cycle source)
# ----------------------------------------------------------------------
def _schedule_cost(ops: List[Operation], config: MeldConfig) -> int:
    trial = Block(label=Label("meld_trial"))
    for op in ops:
        trial.append(op.clone())
    return schedule_block(trial, config.processor).length


def _diamond_weights(
    profile, proc_name, branch, config
) -> Tuple[float, float, float]:
    """(head, taken-arm, fall-arm) relative execution weights."""
    if profile is not None:
        stats = profile.branch_profile(proc_name, branch)
        if stats.executed > 0:
            ratio = stats.taken_ratio
            return 1.0, ratio, 1.0 - ratio
    ratio = config.assumed_taken_ratio
    return 1.0, ratio, 1.0 - ratio


def _cost_gate(
    proc: Procedure,
    head: Block,
    branch: Operation,
    arms: List[Tuple[Block, object]],
    melded_ops: List[Operation],
    profile,
    config: MeldConfig,
) -> Tuple[bool, float, float]:
    """Profile-weighted cycle estimate before vs. after the meld."""
    head_w, taken_w, fall_w = _diamond_weights(
        profile, proc.name, branch, config
    )
    arm_weight = {True: taken_w, False: fall_w}
    before = head_w * schedule_block(head, config.processor).length
    # Taken control transfers cost the exposed branch latency (the cycle
    # simulator's model); the melded head falls straight through to the
    # join, so the diamond branch (taken path) and each arm's jump back
    # to the join are transfers the meld eliminates.
    transfer = config.processor.latencies.branch
    before += taken_w * transfer
    for arm_block, taken in arms:
        before += arm_weight[taken] * _schedule_cost(
            _arm_body(arm_block), config
        )
        terminator = arm_block.terminator()
        if terminator is not None and terminator.opcode is Opcode.JUMP:
            before += arm_weight[taken] * transfer
    prefix = [op for op in head.ops if op is not branch]
    after = head_w * _schedule_cost(prefix + melded_ops, config)
    return after <= before * config.max_cost_ratio, before, after


# ----------------------------------------------------------------------
# The rewrite
# ----------------------------------------------------------------------
def _complement_pred(proc, compare, taken_pred):
    """The fall-through predicate, minting a UC target when missing."""
    fall_pred = None
    for target in compare.pred_targets():
        if target.reg != taken_pred and target.action in (
            Action.UN, Action.UC
        ):
            fall_pred = target.reg
    if fall_pred is not None:
        return fall_pred, False
    if len(compare.dests) >= 2:
        return None, False
    source_action = next(
        (t.action for t in compare.pred_targets() if t.reg == taken_pred),
        None,
    )
    if source_action not in (Action.UN, Action.UC):
        return None, False
    fall_pred = proc.new_pred()
    complement = Action.UC if source_action is Action.UN else Action.UN
    compare.dests = list(compare.dests) + [
        PredTarget(fall_pred, complement)
    ]
    return fall_pred, True


def _try_meld(proc, cfg, head, profile, config, report) -> bool:
    if not head.ops or head.ops[-1].opcode is not Opcode.BRANCH:
        return False
    branch = head.ops[-1]
    target = branch.branch_target()
    if target is None or head.fallthrough is None:
        return False
    if not proc.has_block(target):
        return False
    chains = DefUseChains.build(head)
    compare = guarding_compare(head, chains, branch)
    if compare is None or compare.guard != TRUE_PRED:
        return False
    taken_pred = branch.srcs[0]
    taken_block = proc.block(target)
    fall_label = head.fallthrough

    # One-sided diamond: the taken arm rejoins at the fall-through.
    if (
        _sole_entry(cfg, target, head, "branch")
        and _arm_join(proc, taken_block) == fall_label
        and _arm_meldable(taken_block, config)
    ):
        if not config.meld_one_sided:
            return False
        pairs = [(None, op) for op in _arm_body(taken_block)]
        return _commit(
            proc, head, branch, compare, pairs,
            fall_pred=None, taken_pred=taken_pred,
            arms=[(taken_block, True)], continuation=fall_label,
            profile=profile, config=config, report=report,
        )

    # Two-sided diamond: both arms rejoin at a common label.
    if not proc.has_block(fall_label):
        return False
    fall_block = proc.block(fall_label)
    join = _arm_join(proc, fall_block)
    if join is None or _arm_join(proc, taken_block) != join:
        return False
    if not (
        _sole_entry(cfg, target, head, "branch")
        and _sole_entry(cfg, fall_label, head, "fallthrough")
        and _arm_meldable(taken_block, config)
        and _arm_meldable(fall_block, config)
    ):
        return False
    fall_pred = branch_complement_pred(compare, branch)
    minted = False
    if fall_pred is None:
        fall_pred, minted = _complement_pred(proc, compare, taken_pred)
        if fall_pred is None:
            return False
    liveness = LivenessAnalysis(proc)
    fall_live = liveness.live_out(fall_block.label)
    taken_live = liveness.live_out(taken_block.label)

    def _renameable(live):
        return lambda dest: (
            isinstance(dest, (Reg, FReg)) and dest not in live
        )

    pairs = _pair_arms(
        _arm_body(fall_block),
        _arm_body(taken_block),
        fall_key=lambda op: _meld_key(op, _renameable(fall_live)),
        taken_key=lambda op: _meld_key(op, _renameable(taken_live)),
    )
    committed = _commit(
        proc, head, branch, compare, pairs,
        fall_pred=fall_pred, taken_pred=taken_pred,
        arms=[(fall_block, False), (taken_block, True)],
        continuation=join,
        profile=profile, config=config, report=report,
    )
    if not committed and minted:
        # Undo the freshly minted complement target on rejection.
        compare.dests = [
            t for t in compare.dests if t.reg != fall_pred
        ]
    return committed


def _commit(
    proc, head, branch, compare, pairs, fall_pred, taken_pred,
    arms, continuation, profile, config, report,
) -> bool:
    melded_ops, melded, selects, predicated = _build_meld(
        proc, pairs, fall_pred, taken_pred
    )
    accepted, before, after = _cost_gate(
        proc, head, branch, arms, melded_ops, profile, config
    )
    kind = "meld-accept" if accepted else "meld-reject"
    ledger_record(
        kind, proc.name, head.label.name,
        arms=len(arms),
        pairs=melded,
        selects=selects,
        predicated=predicated,
        cost_before=round(before, 3),
        cost_after=round(after, 3),
    )
    record_counter(f"opt.{kind}")
    if not accepted:
        report.rejected_cost += 1
        return False

    head.remove(branch)
    # Drop the branch's pbr when nothing else reads the BTR.
    btr = branch.srcs[1] if len(branch.srcs) == 2 else None
    if btr is not None and not any(btr in op.srcs for op in head.ops):
        for op in list(head.ops):
            if op.opcode is Opcode.PBR and op.dests and op.dests[0] == btr:
                head.remove(op)
    for op in melded_ops:
        head.append(op)
    head.fallthrough = continuation
    for arm_block, _ in arms:
        proc.remove_block(arm_block)

    report.melded_diamonds += 1
    report.melded_pairs += melded
    report.select_movs += selects
    report.predicated_ops += predicated
    report.removed_branches += 1
    return True
