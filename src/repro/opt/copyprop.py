"""Local copy propagation.

Within each block, forwards unguarded ``mov`` results (register or
immediate) into later source operands, invalidating entries when either
side is redefined. Guards are never rewritten (they are predicate registers
defined by cmpps, not movs). Dead movs are left for DCE.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.opcodes import Opcode
from repro.ir.operands import FReg, Imm, Reg, TRUE_PRED
from repro.ir.procedure import Procedure


def propagate_copies(proc: Procedure) -> int:
    """Rewrite uses of copied values; returns the number of rewrites."""
    rewrites = 0
    for block in proc.blocks:
        env: Dict = {}
        for op in block.ops:
            # Use-rewriting first (the op reads pre-op values).
            new_srcs = []
            for src in op.srcs:
                replacement = env.get(src, src)
                if replacement is not src and replacement != src:
                    rewrites += 1
                new_srcs.append(replacement)
            op.srcs = new_srcs

            # Invalidate any mapping involving the written registers.
            written = set(op.dest_registers())
            if written:
                for key in list(env):
                    if key in written or env[key] in written:
                        del env[key]

            # Record fresh copies.
            if (
                op.opcode in (Opcode.MOV, Opcode.FMOV)
                and op.guard == TRUE_PRED
                and isinstance(op.dests[0], (Reg, FReg))
                and isinstance(op.srcs[0], (Reg, FReg, Imm))
                and op.dests[0] != op.srcs[0]
            ):
                env[op.dests[0]] = op.srcs[0]
    return rewrites
