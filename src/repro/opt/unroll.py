"""Superblock loop unrolling.

A *superblock loop* is a block whose final control transfer returns to its
own head: either a trailing ``jump <self>`` or a trailing conditional
``branch <self>``. Unrolling replicates the body so each dynamic iteration
of the unrolled loop performs several original iterations, amortizing the
loop-back branch (paper Section 2: "loop unrolling has been used to reduce
the number of executed branches").

Replication is semantics-preserving and intentionally does *not* rename
registers or re-associate induction chains — those effects come from how
workloads are written (manually unrolled kernels, as IMPACT's aggressive
preprocessing produced for the paper's baseline). This pass exists for
generality and for the ablation benches.

Two shapes are handled:

* bottom-jump loops: ``L: body...; jump L`` — intermediate copies simply
  drop the jump;
* conditional-latch loops: ``L: body...; branch L if p`` — intermediate
  copies keep the conditional latch branch... inverted logic is not needed
  because a *taken* latch in a middle copy may legally restart the loop at
  ``L`` (the original head): each copy is a complete iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import TransformError
from repro.ir.block import Block
from repro.ir.opcodes import Opcode
from repro.ir.procedure import Procedure


@dataclass
class UnrollReport:
    label: str
    factor: int
    ops_before: int
    ops_after: int


def is_superblock_loop(block: Block) -> bool:
    """Does control return from the end of *block* to its own head?"""
    if not block.ops:
        return False
    last = block.ops[-1]
    if last.opcode is Opcode.JUMP:
        return last.branch_target() == block.label
    if last.opcode is Opcode.BRANCH:
        return last.branch_target() == block.label
    return False


def unroll_superblock_loop(
    proc: Procedure, block: Block, factor: int
) -> UnrollReport:
    """Unroll *block* (a superblock loop) in place by *factor*."""
    if factor < 2:
        raise TransformError(f"unroll factor must be >= 2, got {factor}")
    if not is_superblock_loop(block):
        raise TransformError(f"{block.label} is not a superblock loop")
    before = len(block.ops)
    last = block.ops[-1]
    bottom_jump = last.opcode is Opcode.JUMP

    body = [op.clone() for op in block.ops]
    new_ops = []
    for copy_index in range(factor - 1):
        iteration = [op.clone() for op in body]
        if bottom_jump:
            # Drop the trailing jump (and its pbr, if a branch used one);
            # control falls into the next replica.
            iteration.pop()
        new_ops.extend(iteration)
    new_ops.extend(op.clone() for op in body)
    block.ops = new_ops
    return UnrollReport(
        label=block.label.name,
        factor=factor,
        ops_before=before,
        ops_after=len(block.ops),
    )


def unroll_hot_loops(
    proc: Procedure,
    factor: int,
    hot_labels: Optional[List] = None,
) -> List[UnrollReport]:
    """Unroll every superblock loop (or just *hot_labels*) by *factor*."""
    reports = []
    for block in list(proc.blocks):
        if hot_labels is not None and block.label.name not in hot_labels \
                and block.label not in hot_labels:
            continue
        if is_superblock_loop(block):
            reports.append(unroll_superblock_loop(proc, block, factor))
    return reports
