"""Predicate-aware dead-code elimination.

Flow-insensitive, procedure-scoped: an operation is dead when it has no
side effects and none of its destinations is ever read (as a source or as a
guard) anywhere in the procedure, nor returned. cmpp operations additionally
get *destination trimming*: individual dead predicate targets are dropped
(the paper's worked example removes the second destination of op 13), and
the whole cmpp goes away once all its targets are dead.

Iterates to a fixpoint since removing one op may kill its producers.
"""

from __future__ import annotations

from typing import Set

from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, TRUE_PRED
from repro.ir.procedure import Procedure

def remove_unreachable_blocks(proc: Procedure) -> int:
    """Drop blocks unreachable from the entry; returns how many."""
    from repro.ir.cfg import ControlFlowGraph

    reachable = ControlFlowGraph(proc).reachable()
    victims = [b for b in proc.blocks if b.label not in reachable]
    for block in victims:
        proc.remove_block(block)
    return len(victims)


#: Opcodes that are never deleted regardless of result use.
_EFFECTFUL = frozenset(
    {
        Opcode.STORE,
        Opcode.BRANCH,
        Opcode.JUMP,
        Opcode.CALL,
        Opcode.RETURN,
    }
)


def _used_registers(proc: Procedure) -> Set:
    used: Set = set()
    for block in proc.blocks:
        for op in block.ops:
            used.update(op.source_registers())
            if op.guard != TRUE_PRED:
                used.add(op.guard)
    return used


def eliminate_dead_code(proc: Procedure) -> int:
    """Remove dead operations; returns how many were deleted (targets
    trimmed from a surviving cmpp count as a fraction of zero)."""
    removed = 0
    changed = True
    while changed:
        changed = False
        used = _used_registers(proc)
        for block in proc.blocks:
            # BTRs are block-local in this IR: a pbr is dead unless its
            # branch-target register is read within the same block.
            btrs_used_here = {
                reg
                for op in block.ops
                for reg in op.source_registers()
                if isinstance(reg, BTR)
            }
            survivors = []
            for op in block.ops:
                if op.opcode in _EFFECTFUL:
                    survivors.append(op)
                    continue
                if op.opcode is Opcode.CMPP:
                    live_targets = [
                        t for t in op.dests if t.reg in used
                    ]
                    if not live_targets:
                        removed += 1
                        changed = True
                        continue
                    if len(live_targets) != len(op.dests):
                        op.dests = live_targets
                        changed = True
                    survivors.append(op)
                    continue
                if op.opcode is Opcode.PBR and op.dests:
                    if op.dests[0] not in btrs_used_here:
                        removed += 1
                        changed = True
                        continue
                    survivors.append(op)
                    continue
                dests = op.dest_registers()
                if dests and not any(reg in used for reg in dests):
                    removed += 1
                    changed = True
                    continue
                survivors.append(op)
            block.ops = survivors
    return removed
