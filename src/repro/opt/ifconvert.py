"""Traditional if-conversion of small diamonds onto predicates.

The paper's experiments deliberately exclude classic if-conversion ("no
traditional if-conversion has been applied") but call it out as the way to
"eliminate many unbiased branches and thus further improve the
effectiveness of control CPR". This pass implements that future-work item:
small if-then and if-then-else diamonds whose branch is *unbiased* (a bad
CPR candidate and a bad superblock candidate) are collapsed into
straight-line predicated code, turning their control dependence into a
data dependence the scheduler can overlap — and leaving the surrounding
region as a hyperblock for ICBM.

Convertible patterns (as produced by the frontend's lowering):

* if-then — ``H: ... branch body if p`` / ``body: ops; jump cont`` with
  ``H`` falling through to ``cont``;
* if-then-else — ``H: ... branch else if q`` falling through to ``then``,
  both arms ending at the same join block.

An arm is convertible when every operation can be guarded: no control
transfers, no calls, no already-guarded operations (conjoining guards
would need extra compares), and at most ``max_arm_ops`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.defuse import (
    DefUseChains,
    branch_complement_pred,
    guarding_compare,
)
from repro.ir.block import Block
from repro.ir.cfg import ControlFlowGraph
from repro.ir.opcodes import Opcode
from repro.ir.operands import Label, TRUE_PRED
from repro.ir.operation import PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action
from repro.sim.profiler import ProfileData


@dataclass
class IfConvertConfig:
    """Heuristics for diamond selection."""

    max_arm_ops: int = 12
    #: Convert only branches whose taken ratio falls in this band (the
    #: biased ones are better served by superblock formation + CPR).
    min_taken_ratio: float = 0.15
    max_taken_ratio: float = 0.85
    #: With no profile data, convert every structurally eligible diamond.
    convert_without_profile: bool = True


@dataclass
class IfConvertReport:
    converted_diamonds: int = 0
    predicated_ops: int = 0
    removed_branches: int = 0


def if_convert_procedure(
    proc: Procedure,
    profile: Optional[ProfileData] = None,
    config: Optional[IfConvertConfig] = None,
) -> IfConvertReport:
    """Convert eligible diamonds in *proc*, in place."""
    config = config or IfConvertConfig()
    report = IfConvertReport()
    changed = True
    while changed:
        changed = False
        cfg = ControlFlowGraph(proc)
        for head in list(proc.blocks):
            if _try_convert(proc, cfg, head, profile, config, report):
                changed = True
                break  # CFG changed: recompute and rescan
    return report


# ----------------------------------------------------------------------
def _arm_convertible(block: Block, config: IfConvertConfig) -> bool:
    ops = block.ops
    if block.terminator() is not None and block.terminator().opcode is \
            Opcode.JUMP:
        ops = ops[:-1]
    if len(ops) > config.max_arm_ops:
        return False
    for op in ops:
        if op.is_branch or op.opcode is Opcode.CALL:
            return False
        if op.guard != TRUE_PRED:
            return False  # would need guard conjunction
        if op.opcode in (Opcode.CMPP, Opcode.PRED_CLEAR, Opcode.PRED_SET):
            return False  # predicate definitions must stay unconditional
    return True


def _arm_body(block: Block):
    terminator = block.terminator()
    if terminator is not None and terminator.opcode is Opcode.JUMP:
        return block.ops[:-1]
    return list(block.ops)


def _arm_join(proc: Procedure, block: Block) -> Optional[Label]:
    terminator = block.terminator()
    if terminator is not None and terminator.opcode is Opcode.JUMP:
        return terminator.branch_target()
    if terminator is None and block.fallthrough is not None:
        return block.fallthrough
    return None


def _bias_ok(profile, proc_name, branch, config) -> bool:
    if profile is None:
        return config.convert_without_profile
    stats = profile.branch_profile(proc_name, branch)
    if stats.executed == 0:
        return config.convert_without_profile
    return (
        config.min_taken_ratio
        <= stats.taken_ratio
        <= config.max_taken_ratio
    )


def _single_predecessor(cfg: ControlFlowGraph, label: Label) -> bool:
    return len(set(cfg.predecessors(label))) == 1


def _try_convert(proc, cfg, head, profile, config, report) -> bool:
    if not head.ops or head.ops[-1].opcode is not Opcode.BRANCH:
        return False
    branch = head.ops[-1]
    target = branch.branch_target()
    if target is None or head.fallthrough is None:
        return False
    if not proc.has_block(target):
        return False
    chains = DefUseChains.build(head)
    compare = guarding_compare(head, chains, branch)
    if compare is None or compare.guard != TRUE_PRED:
        return False
    if not _bias_ok(profile, proc.name, branch, config):
        return False

    taken_block = proc.block(target)
    fall_label = head.fallthrough

    # Pattern A: if-then — the taken block rejoins at the fall-through.
    if (
        _single_predecessor(cfg, target)
        and _arm_join(proc, taken_block) == fall_label
        and _arm_convertible(taken_block, config)
    ):
        taken_pred = branch.srcs[0]
        _splice(proc, head, branch, [(taken_block, taken_pred)], fall_label)
        report.converted_diamonds += 1
        report.removed_branches += 1
        report.predicated_ops += len(_arm_body(taken_block))
        proc.remove_block(taken_block)
        return True

    # Pattern B: if-then-else — the fall-through arm and the taken arm
    # both rejoin at a common label.
    if not proc.has_block(fall_label):
        return False
    fall_block = proc.block(fall_label)
    join = _arm_join(proc, fall_block)
    if join is None or _arm_join(proc, taken_block) != join:
        return False
    if not (
        _single_predecessor(cfg, target)
        and _single_predecessor(cfg, fall_label)
        and _arm_convertible(taken_block, config)
        and _arm_convertible(fall_block, config)
    ):
        return False
    taken_pred = branch.srcs[0]
    fall_pred = branch_complement_pred(compare, branch)
    if fall_pred is None:
        if len(compare.dests) >= 2:
            return False
        fall_pred = proc.new_pred()
        source_action = next(
            t.action for t in compare.pred_targets()
            if t.reg == taken_pred
        )
        complement = (
            Action.UC if source_action is Action.UN else Action.UN
        )
        compare.dests = list(compare.dests) + [
            PredTarget(fall_pred, complement)
        ]
    _splice(
        proc,
        head,
        branch,
        [(fall_block, fall_pred), (taken_block, taken_pred)],
        join,
    )
    report.converted_diamonds += 1
    report.removed_branches += 1
    report.predicated_ops += len(_arm_body(taken_block)) + len(
        _arm_body(fall_block)
    )
    proc.remove_block(taken_block)
    proc.remove_block(fall_block)
    return True


def _splice(proc, head, branch, guarded_arms, continuation):
    """Replace *branch* with the arms' operations guarded by their
    predicates, and continue to *continuation*."""
    head.remove(branch)
    # Drop the branch's pbr if nothing else reads the BTR.
    btr = branch.srcs[1] if len(branch.srcs) == 2 else None
    if btr is not None and not any(btr in op.srcs for op in head.ops):
        for op in list(head.ops):
            if op.opcode is Opcode.PBR and op.dests and op.dests[0] == btr:
                head.remove(op)
    for arm_block, pred in guarded_arms:
        for op in _arm_body(arm_block):
            op.guard = pred
            head.append(op)
    head.fallthrough = continuation
