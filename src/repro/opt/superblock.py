"""Profile-driven superblock formation (trace selection + tail duplication).

Implements the classic scheme of Hwu et al. that produced the paper's
baseline code:

1. *Trace selection.* Starting from the hottest unvisited block, a trace
   grows forward along the most likely successor edge while the edge's
   probability clears a threshold and the successor is a valid extension
   (unvisited, single-context, not the trace head — closing back to the
   head makes the trace a superblock loop).
2. *Tail duplication.* Side entrances into the middle of a trace are
   removed by duplicating the trace tail for the outside predecessors.
3. *Merging.* The trace's blocks are concatenated into one single-entry,
   multi-exit block. Internal unconditional jumps disappear; a conditional
   branch onto the trace is inverted (its cmpp gains or reuses a
   complementary target) so the trace continues on the fall-through path.

Edge profiles come from :class:`~repro.sim.profiler.ProfileData`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.defuse import DefUseChains, guarding_compare
from repro.ir.block import Block
from repro.ir.cfg import ControlFlowGraph, Edge
from repro.ir.opcodes import Opcode
from repro.ir.operands import BTR, Label, TRUE_PRED
from repro.ir.operation import Operation, PredTarget
from repro.ir.procedure import Procedure
from repro.ir.semantics import Action
from repro.sim.profiler import ProfileData


@dataclass
class SuperblockConfig:
    """Trace-growing heuristics."""

    min_edge_probability: float = 0.6
    min_block_count: int = 1
    max_trace_blocks: int = 64


@dataclass
class SuperblockReport:
    traces: List[List[str]] = field(default_factory=list)
    duplicated_blocks: int = 0
    merged_blocks: int = 0


def form_superblocks(
    proc: Procedure,
    profile: ProfileData,
    config: Optional[SuperblockConfig] = None,
) -> SuperblockReport:
    """Restructure *proc* in place into superblocks."""
    config = config or SuperblockConfig()
    report = SuperblockReport()
    traces = _select_traces(proc, profile, config)
    for trace in traces:
        if len(trace) < 2:
            continue
        report.traces.append([label.name for label in trace])
        trace = _remove_side_entrances(proc, trace, report)
        _merge_trace(proc, trace, report)
    return report


# ----------------------------------------------------------------------
# Trace selection
# ----------------------------------------------------------------------
def _edge_counts(
    proc: Procedure, profile: ProfileData
) -> Dict[Tuple[Label, Label], int]:
    """Dynamic traversal counts per CFG edge."""
    counts: Dict[Tuple[Label, Label], int] = {}
    for block in proc.blocks:
        remaining = profile.block_count(proc.name, block.label)
        for op in block.ops:
            if op.opcode is Opcode.BRANCH:
                taken = profile.branch_profile(proc.name, op).taken
                target = op.branch_target()
                if target is not None:
                    key = (block.label, target)
                    counts[key] = counts.get(key, 0) + taken
                remaining -= taken
            elif op.opcode is Opcode.JUMP:
                target = op.branch_target()
                if target is not None:
                    key = (block.label, target)
                    counts[key] = counts.get(key, 0) + max(remaining, 0)
        if block.terminator() is None and block.fallthrough is not None:
            key = (block.label, block.fallthrough)
            counts[key] = counts.get(key, 0) + max(remaining, 0)
    return counts


def _select_traces(
    proc: Procedure, profile: ProfileData, config: SuperblockConfig
) -> List[List[Label]]:
    cfg = ControlFlowGraph(proc)
    edge_counts = _edge_counts(proc, profile)
    visited: Set[Label] = set()
    traces: List[List[Label]] = []

    blocks_by_heat = sorted(
        proc.blocks,
        key=lambda b: profile.block_count(proc.name, b.label),
        reverse=True,
    )
    for seed in blocks_by_heat:
        if seed.label in visited:
            continue
        count = profile.block_count(proc.name, seed.label)
        if count < config.min_block_count:
            continue
        trace = [seed.label]
        visited.add(seed.label)
        current = seed.label
        while len(trace) < config.max_trace_blocks:
            best: Optional[Label] = None
            best_count = 0
            total = 0
            for succ in cfg.successors(current):
                edge_count = edge_counts.get((current, succ), 0)
                total += edge_count
                if edge_count > best_count:
                    best_count = edge_count
                    best = succ
            if best is None or total == 0:
                break
            if best_count / total < config.min_edge_probability:
                break
            if best == trace[0]:
                break  # loop closed: trace becomes a superblock loop
            if best in visited:
                break
            # Require the candidate to receive most of its flow from the
            # trace (the classic "best predecessor" check). Deduplicate
            # predecessors: parallel edges (branch + fall-through to the
            # same successor) share one count entry.
            inflow = sum(
                edge_counts.get((p, best), 0)
                for p in set(cfg.predecessors(best))
            )
            if inflow > 0 and edge_counts.get((current, best), 0) / inflow \
                    < config.min_edge_probability:
                break
            trace.append(best)
            visited.add(best)
            current = best
        traces.append(trace)
    return traces


# ----------------------------------------------------------------------
# Tail duplication
# ----------------------------------------------------------------------
def _remove_side_entrances(
    proc: Procedure, trace: List[Label], report: SuperblockReport
) -> List[Label]:
    """Duplicate the trace tail for predecessors outside the trace."""
    cfg = ControlFlowGraph(proc)
    in_trace = set(trace)
    for position in range(1, len(trace)):
        label = trace[position]
        # The legal entrance is the unique trace predecessor; anything else
        # is a side entrance that must be redirected to a duplicate tail.
        side = [
            e for e in cfg.in_edges(label) if e.src != trace[position - 1]
        ]
        if not side:
            continue
        # Duplicate blocks trace[position:] under fresh labels.
        mapping: Dict[Label, Label] = {}
        clones: List[Block] = []
        for tail_label in trace[position:]:
            clone_label = proc.new_label(f"{tail_label.name}.dup")
            mapping[tail_label] = clone_label
            clone = proc.block(tail_label).clone(clone_label)
            clones.append(clone)
            report.duplicated_blocks += 1
        previous = proc.blocks[-1]
        for clone in clones:
            proc.add_block(clone, after=previous)
            previous = clone
        # Retarget intra-tail control flow in the clones.
        for clone in clones:
            if clone.fallthrough in mapping:
                clone.fallthrough = mapping[clone.fallthrough]
            for op in clone.ops:
                target = op.branch_target()
                if target in mapping:
                    op.set_branch_target(mapping[target])
        # The last clone may fall through to code after the original trace;
        # make that explicit with a jump if it currently relies on layout.
        last_clone = clones[-1]
        original_last = proc.block(trace[-1])
        if (
            last_clone.terminator() is None
            and not last_clone.has_return()
            and last_clone.fallthrough is None
        ):
            successor = _layout_successor(proc, original_last)
            if successor is not None:
                last_clone.fallthrough = successor
        # Retarget the side entrances to the duplicate.
        for edge in side:
            src_block = proc.block(edge.src)
            if edge.kind == "fallthrough":
                src_block.fallthrough = mapping[label]
            else:
                for op in src_block.ops:
                    if op.uid == edge.op_uid:
                        _retarget_with_pbr(
                            src_block, op, mapping[label]
                        )
        cfg = ControlFlowGraph(proc)
    return trace


def _retarget_with_pbr(block: Block, branch: Operation, new_target):
    """Point *branch* (and the pbr feeding its BTR) at *new_target*.

    A branch's real target lives in the BTR its pbr prepared; updating
    only the branch's target metadata leaves the two disagreeing, which
    the verifier rejects.
    """
    branch.set_branch_target(new_target)
    if not branch.srcs or not isinstance(branch.srcs[-1], BTR):
        return
    btr = branch.srcs[-1]
    for op in block.ops:
        if op.opcode is Opcode.PBR and op.dests and op.dests[0] == btr:
            op.set_branch_target(new_target)


def _layout_successor(proc: Procedure, block: Block) -> Optional[Label]:
    if block.fallthrough is not None:
        return block.fallthrough
    index = proc.blocks.index(block)
    if block.terminator() is None and index + 1 < len(proc.blocks):
        return proc.blocks[index + 1].label
    return None


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def _merge_trace(
    proc: Procedure, trace: List[Label], report: SuperblockReport
):
    head = proc.block(trace[0])
    for label in trace[1:]:
        nxt = proc.block(label)
        if not _flow_into(proc, head, nxt):
            break
        head.ops.extend(nxt.ops)
        head.fallthrough = nxt.fallthrough
        if (
            head.fallthrough is None
            and nxt.terminator() is None
            and not nxt.has_return()
        ):
            head.fallthrough = _layout_successor(proc, nxt)
        proc.remove_block(nxt)
        report.merged_blocks += 1


def _flow_into(proc: Procedure, head: Block, nxt: Block) -> bool:
    """Make control flow from *head* continue into *nxt* by fall-through,
    removing a trailing jump or inverting a conditional branch. Returns
    False when that is not possible."""
    # A non-final branch in `head` targeting `nxt` would dangle once the
    # label is consumed by the merge (there are no mid-block labels).
    for op in head.ops[:-1]:
        if op.opcode is Opcode.BRANCH and op.branch_target() == nxt.label:
            return False
    terminator = head.terminator()
    if terminator is not None and terminator.opcode is Opcode.JUMP:
        if terminator.branch_target() == nxt.label:
            head.ops.pop()
            _drop_dead_pbr(head, terminator)
            head.fallthrough = None
            return True
        return _invert_onto_trace(proc, head, nxt)
    if terminator is not None:
        return _invert_onto_trace(proc, head, nxt)
    if head.fallthrough == nxt.label:
        return True
    if head.fallthrough is None:
        if _layout_successor(proc, head) == nxt.label:
            return True
        return False
    # Fall-through goes elsewhere: the trace follows a conditional branch
    # that must be the final operation.
    branch = head.ops[-1] if head.ops else None
    if (
        branch is None
        or branch.opcode is not Opcode.BRANCH
        or branch.branch_target() != nxt.label
    ):
        return False
    old_fallthrough = head.fallthrough
    if not _complement_branch(proc, head, branch, old_fallthrough):
        return False
    head.fallthrough = None  # caller merges `nxt` in
    return True


def _invert_onto_trace(proc: Procedure, head: Block, nxt: Block) -> bool:
    """Handle ``[... branch -> nxt, jump/return]`` endings: invert the
    branch onto the terminator's continuation and fall through to *nxt*."""
    if len(head.ops) < 2:
        return False
    terminator = head.ops[-1]
    branch = head.ops[-2]
    if (
        branch.opcode is not Opcode.BRANCH
        or branch.branch_target() != nxt.label
    ):
        return False
    if terminator.opcode is Opcode.JUMP:
        new_target = terminator.branch_target()
    elif terminator.opcode is Opcode.RETURN:
        # Split the return into a cold stub block the inverted branch can
        # target.
        stub_label = proc.new_label(f"{head.label.name}.ret")
        stub = Block(label=stub_label)
        stub.append(terminator.clone())
        proc.add_block(stub)
        new_target = stub_label
    else:
        return False
    if not _complement_branch(proc, head, branch, new_target):
        return False
    head.ops.pop()  # drop the old terminator
    if terminator.opcode is Opcode.JUMP:
        _drop_dead_pbr(head, terminator)
    head.fallthrough = None
    return True


def _complement_branch(
    proc: Procedure, head: Block, branch: Operation, new_target
) -> bool:
    """Invert *branch*'s sense (via its cmpp's complementary target) and
    retarget it (and its pbr) to *new_target*."""
    if new_target is None:
        return False
    chains = DefUseChains.build(head)
    compare = guarding_compare(head, chains, branch)
    if compare is None:
        return False
    source_pred = branch.srcs[0]
    source_action = None
    for target in compare.pred_targets():
        if target.reg == source_pred:
            source_action = target.action
    if source_action not in (Action.UN, Action.UC):
        return False
    wanted = Action.UC if source_action is Action.UN else Action.UN
    complement = None
    for target in compare.pred_targets():
        if target.action is wanted:
            complement = target.reg
    if complement is None:
        if len(compare.dests) >= 2:
            return False
        complement = proc.new_pred()
        compare.dests = list(compare.dests) + [
            PredTarget(complement, wanted)
        ]
    branch.srcs[0] = complement
    branch.set_branch_target(new_target)
    # Also fix the feeding pbr so target metadata stays consistent.
    for op in head.ops:
        if (
            op.opcode is Opcode.PBR
            and op.dests
            and op.dests[0] == branch.srcs[1]
        ):
            op.set_branch_target(new_target)
    return True


def _drop_dead_pbr(block: Block, branch: Operation):
    """Remove the pbr feeding a deleted jump/branch when otherwise unused."""
    if len(branch.srcs) < 2 or not isinstance(branch.srcs[-1], BTR):
        return
    btr = branch.srcs[-1]
    for op in block.ops:
        if btr in op.srcs:
            return
    for op in list(block.ops):
        if op.opcode is Opcode.PBR and op.dests and op.dests[0] == btr:
            block.remove(op)
            return
